package linecomm

import (
	"reflect"
	"testing"

	"sparsehypercube/internal/topo"
)

// gatherScatterQn lifts binomialSchedule(n) into the 2n-round
// gather-scatter gossip (the reversed broadcast followed by the broadcast
// itself) — the linecomm-local stand-in for gossip.GatherScatter, which
// cannot be imported here without a cycle.
func gatherScatterQn(n int) *Schedule {
	bc := binomialSchedule(n)
	out := &Schedule{}
	for ri := len(bc.Rounds) - 1; ri >= 0; ri-- {
		var round Round
		for _, call := range bc.Rounds[ri] {
			rev := make([]uint64, len(call.Path))
			for i, v := range call.Path {
				rev[len(call.Path)-1-i] = v
			}
			round = append(round, Call{Path: rev})
		}
		out.Rounds = append(out.Rounds, round)
	}
	out.Rounds = append(out.Rounds, bc.Rounds...)
	return out
}

// TestGossipStreamShardWidths forces the sharded simulation through its
// extreme shard layouts — one wide shard, word-wide shards (the scalar
// fast path), and odd widths in between — and requires the identical
// GossipResult from each.
func TestGossipStreamShardWidths(t *testing.T) {
	const n = 7
	sched := gatherScatterQn(n)
	net := GraphNetwork{G: topo.Hypercube(n)}

	want := ValidateGossipStream(net, 1, sched.Stream())
	if !want.Complete || !want.Simulated || want.MinKnown != 1<<n {
		t.Fatalf("base gather-scatter misjudged: %+v", want)
	}

	defer func(b int) { gossipSimBudgetBytes = b }(gossipSimBudgetBytes)
	// Budgets chosen to yield shardWords of 1 (scalar path), 2, and a
	// handful, across any worker count.
	for _, budget := range []int{1, 1 << 10, 1 << 14, 1 << 17} {
		gossipSimBudgetBytes = budget
		got := ValidateGossipStream(net, 1, sched.Stream())
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("budget %d diverged:\nwant %+v\ngot  %+v", budget, want, got)
		}
	}
}

// TestMultiSourceStreamSemantics: with a restricted source set,
// completion means every vertex learns exactly the listed tokens; the
// same schedule that completes gossip completes any subset, and a
// schedule that never touches a source cannot.
func TestMultiSourceStreamSemantics(t *testing.T) {
	const n = 5
	sched := gatherScatterQn(n)
	net := GraphNetwork{G: topo.Hypercube(n)}

	res := ValidateMultiSourceStream(net, 1, []uint64{0, 7, 31}, sched.Stream())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.MinKnown != 3 || !res.Simulated {
		t.Fatalf("3-source dissemination over full gossip: %+v", res)
	}

	// An empty (non-nil) source list means all-source, same as nil.
	all := ValidateGossipStream(net, 1, sched.Stream())
	if got := ValidateMultiSourceStream(net, 1, []uint64{}, sched.Stream()); !reflect.DeepEqual(all, got) {
		t.Fatalf("empty source list diverges from nil:\nnil:   %+v\nempty: %+v", all, got)
	}

	// An empty schedule leaves every non-source vertex with zero tokens.
	res = ValidateMultiSourceStream(net, 1, []uint64{4}, (&Schedule{}).Stream())
	if res.Complete || res.MinKnown != 0 || !res.Simulated {
		t.Fatalf("empty schedule with one source: %+v", res)
	}

	// A single exchange spreads source 4's token to exactly one peer.
	one := &Schedule{Rounds: []Round{{{Path: []uint64{4, 5}}}}}
	res = ValidateMultiSourceStream(net, 1, []uint64{4}, one.Stream())
	if res.Complete || res.MinKnown != 0 {
		t.Fatalf("one exchange cannot complete: %+v", res)
	}
}

// TestMultiSourceStreamRejectsBadSources: out-of-range and repeated
// sources are violations and disable the simulation (structural checks
// still run).
func TestMultiSourceStreamRejectsBadSources(t *testing.T) {
	const n = 4
	net := GraphNetwork{G: topo.Hypercube(n)}
	sched := gatherScatterQn(n)

	res := ValidateMultiSourceStream(net, 1, []uint64{3, 1 << n}, sched.Stream())
	if res.Valid() || res.Simulated {
		t.Fatalf("out-of-range source accepted: %+v", res)
	}
	if res.Violations[0].Kind != VertexOutOfRange {
		t.Fatalf("out-of-range source reported as %s", res.Violations[0].Kind)
	}
	if res.Rounds != 2*n {
		t.Fatal("structural pass skipped on bad sources")
	}

	res = ValidateMultiSourceStream(net, 1, []uint64{3, 5, 3}, sched.Stream())
	if res.Valid() || res.Simulated {
		t.Fatalf("repeated source accepted: %+v", res)
	}
	if res.Violations[0].Kind != CallerDuplicate {
		t.Fatalf("repeated source reported as %s", res.Violations[0].Kind)
	}
}

// hugeNet pretends to be a network too large to simulate; it has no
// edges, which is fine for an empty round stream.
type hugeNet struct{ order uint64 }

func (h hugeNet) Order() uint64          { return h.order }
func (hugeNet) HasEdge(u, v uint64) bool { return false }

// TestGossipStreamCaps: both streamed caps — the vertex bound and the
// cell bound — report SimulationCapExceeded and keep the structural pass
// alive; a narrow source set rescues the cell bound but not the vertex
// bound.
func TestGossipStreamCaps(t *testing.T) {
	// Cell cap: order fits, order x order does not (2^42 > 2^40).
	cells := hugeNet{order: 1 << 21}
	res := ValidateGossipStream(cells, 1, (&Schedule{}).Stream())
	if res.Valid() || res.Simulated {
		t.Fatalf("cell-cap instance simulated: %+v", res)
	}
	if res.Violations[0].Kind != SimulationCapExceeded {
		t.Fatalf("cell cap reported as %s", res.Violations[0].Kind)
	}

	// The same order with a handful of sources is back under the cap.
	res = ValidateMultiSourceStream(cells, 1, []uint64{0, 1}, (&Schedule{}).Stream())
	if !res.Valid() || !res.Simulated || res.Complete {
		t.Fatalf("narrow sources at large order: %+v", res)
	}

	// Vertex cap: order alone is too large, sources cannot rescue it.
	verts := hugeNet{order: MaxGossipSimulateVertices + 1}
	res = ValidateMultiSourceStream(verts, 1, []uint64{0, 1}, (&Schedule{}).Stream())
	if res.Valid() || res.Simulated {
		t.Fatalf("vertex-cap instance simulated: %+v", res)
	}
	if res.Violations[0].Kind != SimulationCapExceeded {
		t.Fatalf("vertex cap reported as %s", res.Violations[0].Kind)
	}
}
