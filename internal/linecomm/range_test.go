package linecomm

import (
	"iter"
	"math/rand"
	"reflect"
	"testing"

	"sparsehypercube/internal/topo"
)

// dimHypercube wraps the materialised Q_n as a DimensionedNetwork so the
// range tests exercise the bitvec engine; the bare GraphNetwork form
// exercises the CSR engine and the stripped plainNet form the map engine.
type dimHypercube struct {
	GraphNetwork
	n int
}

func (d dimHypercube) N() int { return d.n }

// rangeStream yields rounds [lo, hi) of a materialised schedule.
func rangeStream(s *Schedule, lo, hi int) iter.Seq[Round] {
	return func(yield func(Round) bool) {
		for _, r := range s.Rounds[lo:hi] {
			if !yield(r) {
				return
			}
		}
	}
}

// validateInRanges is the reference parallel pipeline over a
// materialised schedule: collect per-range informed deltas, prefix-union
// them into seeds, validate each range seeded, merge.
func validateInRanges(net Network, k int, source uint64, s *Schedule, workers int) *Result {
	rounds := len(s.Rounds)
	bounds := make([]int, workers+1)
	for w := range workers + 1 {
		bounds[w] = w * rounds / workers
	}
	deltas := make([][]uint64, workers)
	for w := range workers {
		deltas[w] = CollectInformedStream(net, rangeStream(s, bounds[w], bounds[w+1]))
	}
	parts := make([]*Result, workers)
	var seed []uint64
	for w := range workers {
		parts[w] = ValidateStreamSeeded(net, k, source, seed, bounds[w],
			rangeStream(s, bounds[w], bounds[w+1]), DefaultOptions(), 1)
		seed = append(seed, deltas[w]...)
	}
	return MergeRangeResults(net.Order(), parts)
}

// TestRangeValidationMatchesSerial: splitting a schedule into seeded
// round ranges and merging must reproduce the serial ValidateStream
// Result exactly — on the intact schedule and on every catalogue
// mutation, under all three disjointness engines.
func TestRangeValidationMatchesSerial(t *testing.T) {
	const n = 6
	g := topo.Hypercube(n)
	for _, net := range []struct {
		name string
		net  Network
	}{
		{"map-engine", plainNet{GraphNetwork{G: g}}},
		{"csr-engine", GraphNetwork{G: g}},
		{"bitvec-engine", dimHypercube{GraphNetwork{G: g}, n}},
	} {
		t.Run(net.name, func(t *testing.T) {
			base := binomialSchedule(n)
			schedules := []*Schedule{base}
			rng := rand.New(rand.NewSource(7))
			for _, m := range mutationsForQn(n) {
				s := cloneSchedule(base)
				if m.mut(rng, s) {
					schedules = append(schedules, s)
				}
			}
			for si, s := range schedules {
				serial := ValidateStream(net.net, 1, s.Source, s.Stream())
				for _, workers := range []int{2, 3, len(s.Rounds)} {
					got := validateInRanges(net.net, 1, s.Source, s, workers)
					if !reflect.DeepEqual(serial, got) {
						t.Fatalf("schedule %d, %d workers: merged range Result diverges\nserial: %+v\nmerged: %+v",
							si, workers, serial, got)
					}
				}
			}
		})
	}
}

// TestValidateStreamOrderZero: an order-0 network must report the
// source as out of range — not panic in MinimumRounds and not claim
// completeness vacuously (the pre-refactor early-return behaviour).
func TestValidateStreamOrderZero(t *testing.T) {
	res := ValidateStream(emptyNet{}, 1, 0, (&Schedule{}).Stream())
	if res.Complete || res.MinimumTime {
		t.Fatalf("order-0 network judged complete: %+v", res)
	}
	if len(res.Violations) != 1 || res.Violations[0].Kind != VertexOutOfRange {
		t.Fatalf("want one VertexOutOfRange violation, got %+v", res.Violations)
	}
	merged := MergeRangeResults(0, []*Result{res})
	if merged.Complete || merged.MinimumTime {
		t.Fatalf("order-0 merge judged complete: %+v", merged)
	}
}

// emptyNet is a 0-vertex network.
type emptyNet struct{}

func (emptyNet) Order() uint64            { return 0 }
func (emptyNet) HasEdge(u, v uint64) bool { return false }

// TestCollectInformedMatchesValidator: the structural collector must
// inform exactly the receivers the full validator informs — on valid
// and mutated schedules alike.
func TestCollectInformedMatchesValidator(t *testing.T) {
	const n = 5
	net := GraphNetwork{G: topo.Hypercube(n)}
	base := binomialSchedule(n)
	rng := rand.New(rand.NewSource(11))
	schedules := []*Schedule{base}
	for _, m := range mutationsForQn(n) {
		s := cloneSchedule(base)
		if m.mut(rng, s) {
			schedules = append(schedules, s)
		}
	}
	for si, s := range schedules {
		// Serial validation's informed count from source 0...
		serial := ValidateStream(net, 1, 0, s.Stream())
		// ...must equal |{0} ∪ collected receivers|.
		informed := map[uint64]bool{0: true}
		for _, v := range CollectInformedStream(net, s.Stream()) {
			informed[v] = true
		}
		if uint64(len(informed)) != serial.Informed {
			t.Fatalf("schedule %d: collector implies %d informed, validator says %d",
				si, len(informed), serial.Informed)
		}
	}
}

// TestMergeRangeResultsEdgeCases pins the merge on the degenerate
// partitions a distributed coordinator can produce: a single range
// covering the whole plan, and an empty range (zero rounds) appended
// after full coverage — both must reproduce the serial Result exactly,
// whole-schedule judgements (Complete, MinimumTime) included.
func TestMergeRangeResultsEdgeCases(t *testing.T) {
	const n = 6
	net := GraphNetwork{G: topo.Hypercube(n)}
	s := binomialSchedule(n)
	serial := ValidateStream(net, 1, s.Source, s.Stream())
	if !serial.Complete || !serial.MinimumTime {
		t.Fatalf("baseline schedule broken: %+v", serial)
	}

	// A single-range partition: one seeded validator over everything.
	whole := ValidateStreamSeeded(net, 1, s.Source, nil, 0, s.Stream(), DefaultOptions(), 1)
	if got := MergeRangeResults(net.Order(), []*Result{whole}); !reflect.DeepEqual(serial, got) {
		t.Fatalf("single-range merge diverges:\nserial: %+v\nmerged: %+v", serial, got)
	}

	// An empty range after full coverage: no rounds, the full informed
	// set as seed. It contributes nothing but its (correct) final count,
	// and the merge must still come out serial-identical.
	delta := CollectInformedStream(net, s.Stream())
	empty := ValidateStreamSeeded(net, 1, s.Source, delta, len(s.Rounds),
		func(yield func(Round) bool) {}, DefaultOptions(), 1)
	if len(empty.InformedPerRound) != 0 {
		t.Fatalf("empty range reported rounds: %+v", empty)
	}
	if empty.Informed != serial.Informed {
		t.Fatalf("empty range count %d, want %d", empty.Informed, serial.Informed)
	}
	if got := MergeRangeResults(net.Order(), []*Result{whole, empty}); !reflect.DeepEqual(serial, got) {
		t.Fatalf("empty-range merge diverges:\nserial: %+v\nmerged: %+v", serial, got)
	}
}

// TestTeeInformedMatchesCollect: consuming a stream through TeeInformed
// must yield the untouched rounds and accumulate exactly the
// CollectInformedStream delta — including under mutations that make
// calls structurally dead.
func TestTeeInformedMatchesCollect(t *testing.T) {
	const n = 5
	net := GraphNetwork{G: topo.Hypercube(n)}
	base := binomialSchedule(n)
	schedules := []*Schedule{base}
	rng := rand.New(rand.NewSource(11))
	for _, m := range mutationsForQn(n) {
		s := cloneSchedule(base)
		if m.mut(rng, s) {
			schedules = append(schedules, s)
		}
	}
	for si, s := range schedules {
		want := CollectInformedStream(net, s.Stream())
		var got []uint64
		rounds := 0
		for r := range TeeInformed(net, s.Stream(), &got) {
			rounds += len(r) // consume; rounds must pass through untouched
		}
		if rounds != s.TotalCalls() {
			t.Fatalf("schedule %d: tee dropped calls: saw %d, want %d", si, rounds, s.TotalCalls())
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("schedule %d: tee delta diverges:\nwant %v\ngot  %v", si, want, got)
		}
		// Early termination stops the tee mid-stream without panicking.
		var partial []uint64
		for range TeeInformed(net, s.Stream(), &partial) {
			break
		}
		if len(partial) > len(want) {
			t.Fatalf("schedule %d: partial tee overshot: %d > %d", si, len(partial), len(want))
		}
	}
}
