package linecomm

import (
	"math/rand"
	"testing"

	"sparsehypercube/internal/topo"
)

// Mutation testing of the validator: start from a known-valid schedule on
// Q_n (the binomial broadcast) and apply random structural corruptions.
// Every mutation below breaks a model rule, so the validator must reject
// all of them — silence on any is a validator bug.

// binomialSchedule builds the classic valid Q_n broadcast from 0.
func binomialSchedule(n int) *Schedule {
	s := &Schedule{Source: 0}
	informed := []uint64{0}
	for d := n; d >= 1; d-- {
		var round Round
		bit := uint64(1) << uint(d-1)
		for _, w := range informed {
			round = append(round, Call{Path: []uint64{w, w ^ bit}})
		}
		for _, c := range round {
			informed = append(informed, c.To())
		}
		s.Rounds = append(s.Rounds, round)
	}
	return s
}

func cloneSchedule(s *Schedule) *Schedule {
	out := &Schedule{Source: s.Source, Rounds: make([]Round, len(s.Rounds))}
	for i, r := range s.Rounds {
		out.Rounds[i] = make(Round, len(r))
		for j, c := range r {
			out.Rounds[i][j] = Call{Path: append([]uint64(nil), c.Path...)}
		}
	}
	return out
}

// scheduleMutation is one structural corruption of a schedule on Q_n;
// mut returns false when inapplicable. Shared between the serial
// validator's mutation tests and the ValidateStream crosschecks.
type scheduleMutation struct {
	name string
	mut  func(rng *rand.Rand, s *Schedule) bool
}

// mutationsForQn returns the corruption catalogue for binomialSchedule(n).
func mutationsForQn(n int) []scheduleMutation {
	return []scheduleMutation{
		{"retarget-receiver-to-duplicate", func(rng *rand.Rand, s *Schedule) bool {
			// Make two calls in one round share a receiver.
			for _, r := range s.Rounds {
				if len(r) >= 2 {
					r[1].Path[len(r[1].Path)-1] = r[0].To()
					return true
				}
			}
			return false
		}},
		{"uninformed-caller", func(rng *rand.Rand, s *Schedule) bool {
			// Round 1 gains a call from a vertex that cannot know yet.
			v := uint64(rng.Intn(1<<n-2) + 1)
			if v == s.Source {
				v++
			}
			s.Rounds[0] = append(s.Rounds[0], Call{Path: []uint64{v, v ^ 1}})
			return true
		}},
		{"duplicate-caller", func(rng *rand.Rand, s *Schedule) bool {
			c := s.Rounds[0][0]
			s.Rounds[0] = append(s.Rounds[0], Call{Path: []uint64{c.From(), c.From() ^ 2}})
			return true
		}},
		{"non-edge-hop", func(rng *rand.Rand, s *Schedule) bool {
			// Replace a target with a vertex at Hamming distance 2.
			ri := rng.Intn(len(s.Rounds))
			ci := rng.Intn(len(s.Rounds[ri]))
			p := s.Rounds[ri][ci].Path
			p[len(p)-1] = p[0] ^ 3
			return true
		}},
		{"repeated-vertex", func(rng *rand.Rand, s *Schedule) bool {
			ri := rng.Intn(len(s.Rounds))
			ci := rng.Intn(len(s.Rounds[ri]))
			c := &s.Rounds[ri][ci]
			c.Path = append(c.Path, c.Path[len(c.Path)-2], c.Path[len(c.Path)-1])
			return true
		}},
		{"overlong-call", func(rng *rand.Rand, s *Schedule) bool {
			ri := rng.Intn(len(s.Rounds))
			ci := rng.Intn(len(s.Rounds[ri]))
			c := &s.Rounds[ri][ci]
			last := c.Path[len(c.Path)-1]
			c.Path = append(c.Path, last^1, last^1^2) // two extra hops: length 3 > k = 1
			return true
		}},
		{"shared-edge", func(rng *rand.Rand, s *Schedule) bool {
			// Extend one call's path through another call's edge.
			for _, r := range s.Rounds {
				if len(r) >= 2 {
					victim := r[0]
					c := &r[1]
					// Reroute call 1 to traverse victim's edge: from ->
					// victim.From -> victim.To (may also break adjacency,
					// but the edge clash is what we plant; either finding
					// counts as caught).
					c.Path = []uint64{c.From(), victim.From(), victim.To()}
					return true
				}
			}
			return false
		}},
		{"out-of-range-vertex", func(rng *rand.Rand, s *Schedule) bool {
			s.Rounds[0][0].Path[1] = 1 << n
			return true
		}},
		{"empty-path", func(rng *rand.Rand, s *Schedule) bool {
			s.Rounds[0][0].Path = s.Rounds[0][0].Path[:1]
			return true
		}},
		{"re-inform", func(rng *rand.Rand, s *Schedule) bool {
			// A later round re-targets the source.
			last := s.Rounds[len(s.Rounds)-1]
			last[0].Path[len(last[0].Path)-1] = s.Source
			// Keep adjacency: source's neighbor calls it.
			last[0].Path[0] = s.Source ^ 1<<uint(n-1)
			last[0].Path = last[0].Path[:2]
			last[0].Path[1] = s.Source
			return true
		}},
	}
}

func TestMutationsAlwaysCaught(t *testing.T) {
	const n = 6
	net := GraphNetwork{G: topo.Hypercube(n)}
	base := binomialSchedule(n)
	if res := Validate(net, 1, base); !res.Valid() || !res.MinimumTime {
		t.Fatalf("base schedule must be valid: %v", res.Err())
	}

	for _, m := range mutationsForQn(n) {
		rng := rand.New(rand.NewSource(42))
		applied := false
		for trial := 0; trial < 20; trial++ {
			s := cloneSchedule(base)
			if !m.mut(rng, s) {
				continue
			}
			applied = true
			res := Validate(net, 1, s)
			ok := res.Valid() && res.Complete && res.MinimumTime
			if ok {
				t.Fatalf("mutation %q went undetected", m.name)
			}
		}
		if !applied {
			t.Fatalf("mutation %q never applicable", m.name)
		}
	}
}

// Property-style sweep: random single-call deletions must always break
// completeness (every call in a minimum-time schedule is load-bearing).
func TestEveryCallIsLoadBearing(t *testing.T) {
	const n = 5
	net := GraphNetwork{G: topo.Hypercube(n)}
	base := binomialSchedule(n)
	for ri := range base.Rounds {
		for ci := range base.Rounds[ri] {
			s := cloneSchedule(base)
			s.Rounds[ri] = append(s.Rounds[ri][:ci], s.Rounds[ri][ci+1:]...)
			res := Validate(net, 1, s)
			if res.Complete {
				t.Fatalf("dropping round %d call %d left schedule complete", ri, ci)
			}
		}
	}
}
