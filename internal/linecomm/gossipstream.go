package linecomm

import (
	"fmt"
	"iter"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"sparsehypercube/internal/bitvec"
)

// This file is the streaming half of the gossip validator:
// ValidateGossipStream consumes rounds as a producer
// (core.ScheduleGossipRounds, a schedio decoder, a network feed) emits
// them, so the doubled gather-scatter schedule is never materialised. Per
// round it runs the structural checks of checkGossipCall plus the
// cross-call disjointness checks on flat bitvec-backed sets (hypercube
// family), slot-indexed bit sets (any SlottedNetwork — see csr.go), or
// per-round maps (everything else), retaining only the (from, to)
// exchange pairs — two words per call instead of the full paths.
//
// Knowledge tracking is the part that does not fit in memory at n >= 20:
// a full token matrix is order^2 bits (128 GiB at n = 20). The streamed
// validator therefore shards the token axis: each shard owns a slice of
// the token universe, fills its own order x shardTokens bit matrix by
// replaying the retained exchange pairs, and folds per-vertex popcounts
// into a shared count vector under a lock — sharded bitvec fills, serial
// merge. Shards are independent, so they run across a worker pool;
// per-shard memory is bounded by gossipSimBudgetBytes regardless of
// order, and the result is bit-identical to the serial simulation because
// token exchange is union-only (shards never interact).
//
// The same machinery validates multi-source dissemination
// (ValidateMultiSourceStream): only the listed sources hold tokens, so
// the token axis is len(sources) wide and instances far beyond the
// all-source cap still simulate exactly.

const (
	// MaxGossipSimulateCells caps order x tokens, the total knowledge
	// matrix size the streamed validator is willing to fill (across all
	// shards). 2^40 cells admits full gossip at n = 20 and, e.g., 2^20
	// sampled sources at n = 20; time scales with cells / word size.
	MaxGossipSimulateCells = uint64(1) << 40
	// MaxGossipSimulateVertices caps order alone: the count vector and
	// every shard's matrix have one row per vertex no matter how narrow
	// the token shard is.
	MaxGossipSimulateVertices = uint64(1) << 26
)

// gossipSimBudgetBytes bounds the simulation's resident matrix memory
// (all workers together). A variable so tests can shrink it to force
// many narrow shards.
var gossipSimBudgetBytes = 512 << 20

// ValidateGossipStream checks a streamed schedule under the k-line
// gossip model on net — every vertex starts with its own token — and
// returns the same GossipResult, violation for violation, that
// ValidateGossip returns on the materialised schedule whenever both run
// (order <= MaxGossipSimulateOrder). Beyond the serial cap it keeps
// simulating up to MaxGossipSimulateCells / MaxGossipSimulateVertices by
// sharding the token matrix; past those caps it still performs every
// structural check and reports a SimulationCapExceeded violation for the
// knowledge half.
func ValidateGossipStream(net Network, k int, rounds iter.Seq[Round]) *GossipResult {
	return ValidateMultiSourceStream(net, k, nil, rounds)
}

// ValidateMultiSourceStream is ValidateGossipStream for multi-source
// dissemination: only sources hold tokens at the start (nil or empty
// means every vertex, i.e. gossip), and completion means every vertex
// ends up knowing every source's token. The narrower token axis is what
// makes exact simulation feasible at orders where all-source gossip
// exceeds the cell cap. Sources must be distinct and in range; offenders
// are reported as violations and disable simulation.
func ValidateMultiSourceStream(net Network, k int, sources []uint64, rounds iter.Seq[Round]) *GossipResult {
	res := &GossipResult{}
	order := net.Order()
	if len(sources) == 0 {
		sources = nil // empty and nil both mean all-source, everywhere below
	}
	m, srcOK := countGossipTokens(res, order, sources)
	simulate := srcOK && order > 0 &&
		order <= MaxGossipSimulateVertices &&
		uint64(m) <= MaxGossipSimulateCells/order
	if srcOK && !simulate {
		res.Violations = append(res.Violations, Violation{
			Round: -1, Call: -1, Kind: SimulationCapExceeded,
			Msg: fmt.Sprintf("order %d with %d tokens exceeds streamed simulation caps (order <= %d, order*tokens <= %d)",
				order, m, MaxGossipSimulateVertices, MaxGossipSimulateCells),
		})
	}

	var st gossipRoundState
	if dn, ok := net.(DimensionedNetwork); ok &&
		dn.N() >= 1 && order <= maxStreamBits/uint64(dn.N()) &&
		order <= uint64(1)<<uint(dn.N()) {
		st = newGossipBitvecState(order, dn.N())
	} else if sn, ok := slottedFor(net, order); ok {
		st = newGossipCSRState(sn, order)
	} else {
		st = newGossipMapState()
	}

	var pairs []uint64 // flat (from, to) exchange log for the simulation
	nRounds := 0
	for round := range rounds {
		st.beginRound(round)
		for ci, call := range round {
			var stage uint8
			stage, res.Violations = checkGossipCall(net, k, order, nRounds, ci, call, res.Violations)
			if stage == gossipSkip {
				continue
			}
			if l := call.Length(); l > res.MaxCallLength {
				res.MaxCallLength = l
			}
			if stage != gossipFull {
				continue
			}
			from, to := call.From(), call.To()
			for _, endpoint := range [2]uint64{from, to} {
				if prev, dup := st.busyClaim(endpoint, ci); dup {
					res.Violations = append(res.Violations, Violation{nRounds, ci, CallerDuplicate,
						fmt.Sprintf("vertex %d already in call %d this round", endpoint, prev)})
				}
			}
			for i := 1; i < len(call.Path); i++ {
				a, b := call.Path[i-1], call.Path[i]
				if a > b {
					a, b = b, a
				}
				if st.edgeUse(a, b) {
					res.Violations = append(res.Violations, Violation{nRounds, ci, EdgeConflict,
						fmt.Sprintf("edge {%d,%d} reused", a, b)})
				}
			}
			if simulate {
				pairs = append(pairs, from, to)
			}
		}
		st.endRound()
		nRounds++
	}
	res.Rounds = nRounds

	if simulate {
		counts := simulateGossipTokens(order, sources, pairs)
		res.Simulated = true
		res.MinKnown = m
		res.Complete = true
		for _, c := range counts {
			if int(c) < res.MinKnown {
				res.MinKnown = int(c)
			}
			if int(c) != m {
				res.Complete = false
			}
		}
	}
	res.MinimumTime = res.Complete && nRounds == GossipMinimumRounds(order)
	return res
}

// countGossipTokens validates the source list and returns the token
// count: order for all-source gossip, len(sources) otherwise. ok is false
// when any source is out of range or repeated (reported as violations).
func countGossipTokens(res *GossipResult, order uint64, sources []uint64) (int, bool) {
	if len(sources) == 0 {
		return int(order), true
	}
	ok := true
	seen := make(map[uint64]struct{}, len(sources))
	for _, v := range sources {
		if v >= order {
			res.Violations = append(res.Violations, Violation{
				Round: -1, Call: -1, Kind: VertexOutOfRange,
				Msg: fmt.Sprintf("source %d outside [0,%d)", v, order)})
			ok = false
			continue
		}
		if _, dup := seen[v]; dup {
			res.Violations = append(res.Violations, Violation{
				Round: -1, Call: -1, Kind: CallerDuplicate,
				Msg: fmt.Sprintf("source %d listed more than once", v)})
			ok = false
		}
		seen[v] = struct{}{}
	}
	return len(sources), ok
}

// gossipRoundState tracks the per-round disjointness constraints of the
// telephone model: one call per vertex (as an endpoint) and edge-disjoint
// paths. Unlike the broadcast state there is no informed set — gossip has
// no caller-knowledge rule.
type gossipRoundState interface {
	// beginRound resets per-round tracking; r is retained until endRound
	// (the bit-set engine scans it to recover first-claim call indices).
	beginRound(r Round)
	// busyClaim registers call ci as occupying endpoint v. When v is
	// already busy this round it reports the occupying call's index.
	busyClaim(v uint64, ci int) (prev int, dup bool)
	// edgeUse registers one use of edge {u,v} (u <= v canonical) and
	// reports whether the edge was already used this round. Gossip
	// reports every reuse, not just the first.
	edgeUse(u, v uint64) bool
	endRound()
}

// gossipMapState is the general-purpose engine: the same per-round maps
// the serial validator uses, cleared (not reallocated) between rounds.
type gossipMapState struct {
	busy  map[uint64]int
	edges map[edgeKey]bool
}

func newGossipMapState() *gossipMapState {
	return &gossipMapState{busy: make(map[uint64]int), edges: make(map[edgeKey]bool)}
}

func (g *gossipMapState) beginRound(Round) {
	clear(g.busy)
	clear(g.edges)
}

func (g *gossipMapState) busyClaim(v uint64, ci int) (int, bool) {
	if prev, dup := g.busy[v]; dup {
		return prev, true
	}
	g.busy[v] = ci
	return 0, false
}

func (g *gossipMapState) edgeUse(u, v uint64) bool {
	e := edgeKey{u, v}
	used := g.edges[e]
	g.edges[e] = true
	return used
}

func (g *gossipMapState) endRound() {}

// gossipBitvecState is the hypercube-family fast path (DimensionedNetwork
// contract: every edge flips exactly one address bit): edge slots indexed
// vertex*n + dim and endpoint occupancy by vertex, all flat bit tests.
// Touched slots are recorded and cleared between rounds, so the sets are
// allocated once per validation run.
type gossipBitvecState struct {
	n        int
	edgeUsed *bitvec.Set // order*n bits
	busyUsed *bitvec.Set // order bits

	round        Round
	claimed      []int // calls that registered at least one endpoint, ascending
	touchedEdges []int
	touchedBusy  []int
}

func newGossipBitvecState(order uint64, n int) *gossipBitvecState {
	return &gossipBitvecState{
		n:        n,
		edgeUsed: bitvec.New(int(order) * n),
		busyUsed: bitvec.New(int(order)),
	}
}

func (g *gossipBitvecState) beginRound(r Round) { g.round = r }

func (g *gossipBitvecState) busyClaim(v uint64, ci int) (int, bool) {
	if !g.busyUsed.TestAndSet(int(v)) {
		g.touchedBusy = append(g.touchedBusy, int(v))
		if len(g.claimed) == 0 || g.claimed[len(g.claimed)-1] != ci {
			g.claimed = append(g.claimed, ci)
		}
		return 0, false
	}
	// Duplicate: recover the first occupying call by scanning the calls
	// that registered endpoints, in order (rare — only on a violation).
	// The first claimed call whose endpoint matches v is the occupier: any
	// non-claiming match would itself have been preceded by the claimer.
	for _, idx := range g.claimed {
		if c := g.round[idx]; c.From() == v || c.To() == v {
			return idx, true
		}
	}
	return 0, true // unreachable: a set busy bit implies a registered claim
}

func (g *gossipBitvecState) edgeUse(u, v uint64) bool {
	slot := int(u)*g.n + bits.TrailingZeros64(u^v)
	if !g.edgeUsed.TestAndSet(slot) {
		g.touchedEdges = append(g.touchedEdges, slot)
		return false
	}
	return true
}

func (g *gossipBitvecState) endRound() {
	for _, s := range g.touchedEdges {
		g.edgeUsed.Clear(s)
	}
	for _, s := range g.touchedBusy {
		g.busyUsed.Clear(s)
	}
	g.touchedEdges = g.touchedEdges[:0]
	g.touchedBusy = g.touchedBusy[:0]
	g.claimed = g.claimed[:0]
	g.round = nil
}

// simulateGossipTokens replays the exchange log over the token matrix,
// sharded along the token axis, and returns the per-vertex known-token
// counts. sources nil means token t starts at vertex t (all-source
// gossip); otherwise token t starts at sources[t]. An exchange gives both
// endpoints the union of their rows — union-only updates make shards
// independent, so each worker fills its own shard matrix and the only
// synchronisation is the serial fold of popcounts into counts.
func simulateGossipTokens(order uint64, sources []uint64, pairs []uint64) []int32 {
	n := int(order)
	m := len(sources)
	if sources == nil {
		m = n
	}
	counts := make([]int32, n)
	totalWords := (m + 63) / 64
	if totalWords == 0 {
		return counts
	}

	workers := runtime.GOMAXPROCS(0)
	// Every shard matrix has order rows: cap workers so even one-word
	// shards fit the budget, then size shards to fill it.
	if maxW := gossipSimBudgetBytes / (n * 8); workers > maxW {
		workers = max(maxW, 1)
	}
	shardWords := gossipSimBudgetBytes / (workers * n * 8)
	shardWords = min(max(shardWords, 1), totalWords)
	numShards := (totalWords + shardWords - 1) / shardWords
	if workers > numShards {
		workers = numShards
	}

	var (
		mu   sync.Mutex
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var know []uint64
			for {
				si := int(next.Add(1)) - 1
				if si >= numShards {
					return
				}
				lo := si * shardWords
				hi := min(lo+shardWords, totalWords)
				w := hi - lo
				if cap(know) < n*w {
					know = make([]uint64, n*w)
				} else {
					know = know[:n*w]
					clear(know)
				}
				// Fill: seed the shard's tokens, replay the exchange log.
				tlo, thi := lo*64, min(hi*64, m)
				for t := tlo; t < thi; t++ {
					v := t
					if sources != nil {
						v = int(sources[t])
					}
					know[v*w+(t-tlo)>>6] |= 1 << uint(t&63)
				}
				if w == 1 {
					for p := 0; p < len(pairs); p += 2 {
						u := know[pairs[p]] | know[pairs[p+1]]
						know[pairs[p]] = u
						know[pairs[p+1]] = u
					}
				} else {
					for p := 0; p < len(pairs); p += 2 {
						ra := know[int(pairs[p])*w:][:w]
						rb := know[int(pairs[p+1])*w:][:w]
						for j := range ra {
							u := ra[j] | rb[j]
							ra[j] = u
							rb[j] = u
						}
					}
				}
				// Merge: fold the shard's popcounts serially.
				mu.Lock()
				for v := 0; v < n; v++ {
					c := 0
					for _, wd := range know[v*w : (v+1)*w] {
						c += bits.OnesCount64(wd)
					}
					counts[v] += int32(c)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return counts
}
