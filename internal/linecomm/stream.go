package linecomm

import (
	"fmt"
	"iter"
	"math/bits"
	"runtime"
	"sync"

	"sparsehypercube/internal/bitvec"
	"sparsehypercube/internal/graph"
)

// This file is the streaming half of the validator: ValidateStream
// consumes rounds as a producer (core.ScheduleRounds, a network feed, a
// decoder) emits them, so a schedule never has to be materialised to be
// checked. Per round it runs in two phases:
//
//  1. fill — the structural checks that are independent between calls
//     (path shape, vertex range, edge existence, length bound, caller
//     knowledge) are sharded across a pool of goroutines;
//  2. merge — the cross-call disjointness checks (duplicate callers,
//     edge conflicts, receiver conflicts) run serially over the phase-1
//     records, in call order, so the produced Result is byte-for-byte
//     identical to the sequential Validate.
//
// The merge phase picks one of three disjointness engines (newRoundState):
// on hypercube-family networks (DimensionedNetwork) with Definition 1
// capacities, flat bitvec-backed sets with edge slots indexed by
// vertex*n + dim; on any network carrying a dense edge numbering
// (SlottedNetwork — materialised CSR graphs qualify automatically), the
// slot-indexed csrState in csr.go, generalised capacities included; and
// for everything else the same per-round maps the sequential validator
// uses (mapState, the differential suite's reference engine), still
// streamed and still sharded in phase 1.

// DimensionedNetwork is a Network whose vertices are n-bit addresses and
// whose edges each connect vertices differing in exactly one bit:
// hypercubes and their spanning subgraphs (the sparse hypercube, Q_n
// itself). The property lets the validator index edge slots as
// vertex*n + dimension instead of hashing edge keys.
type DimensionedNetwork interface {
	Network
	// N returns the address width in bits; Order() <= 1 << N().
	N() int
}

const (
	// maxStreamBits caps the size of the bit-set engine's edge-slot
	// universe (order * n bits); larger instances use the map engine.
	maxStreamBits = 1 << 31
	// streamShardChunk is the minimum number of calls worth handing to a
	// structural-check goroutine.
	streamShardChunk = 1024
)

// streamBlock is the number of calls checked per fill/merge cycle. It
// bounds the validator's extra memory at O(streamBlock) records
// regardless of round width. A variable so tests can shrink it to cover
// the multi-block merge path with narrow rounds.
var streamBlock = 1 << 16

// call stages decided by the fill phase, mirroring the sequential
// validator's early-continue points.
const (
	stageSkip   uint8 = iota // too short or out of range: no further checks
	stageCaller              // structurally bad: duplicate-caller check only
	stageFull                // all cross-call checks apply
)

// ValidateStream checks a streamed schedule from source against the
// classic k-line model (Definition 1) on net. It consumes rounds as they
// are produced — yielded rounds may reuse storage between iterations —
// and returns the same Result, violation for violation, that Validate
// returns on the materialised schedule.
func ValidateStream(net Network, k int, source uint64, rounds iter.Seq[Round]) *Result {
	return ValidateStreamOpts(net, k, source, rounds, DefaultOptions())
}

// ValidateStreamOpts is ValidateStream under the generalised model of
// ValidateOpts.
func ValidateStreamOpts(net Network, k int, source uint64, rounds iter.Seq[Round], opts Options) *Result {
	res := ValidateStreamSeeded(net, k, source, nil, 0, rounds, opts, 0)
	order := net.Order()
	// An order-0 network is never "complete" (the source-out-of-range
	// violation is already in res), and the guard keeps MinimumRounds —
	// undefined at 0 — from being evaluated.
	res.Complete = order > 0 && res.Informed == order
	res.MinimumTime = res.Complete && len(res.InformedPerRound) == MinimumRounds(order)
	return res
}

// newRoundState picks the disjointness engine for one validation run:
// flat bit sets on dimensioned networks under Definition 1 capacities,
// the slot-indexed CSR engine on any network that carries a dense edge
// numbering (generalised capacities included), the per-round reference
// maps otherwise.
func newRoundState(net Network, order, source uint64, opts Options) roundState {
	if dn, ok := net.(DimensionedNetwork); ok &&
		opts.EdgeCapacity == 1 && opts.ReceiverCapacity == 1 &&
		dn.N() >= 1 && order <= maxStreamBits/uint64(dn.N()) &&
		// Reject inconsistent implementations (Order beyond the address
		// width would alias edge slots): fall back to the map engine.
		order <= uint64(1)<<uint(dn.N()) {
		return newBitvecState(order, dn.N(), source)
	}
	if sn, ok := slottedFor(net, order); ok {
		return newCSRState(sn, order, source, opts)
	}
	return newMapState(source, opts)
}

// roundState tracks the informed set and the per-round disjointness
// constraints. All methods are called from the serial merge phase except
// isInformed, which the fill phase reads concurrently; implementations
// must not mutate state visible to isInformed between beginRound and
// endRound.
type roundState interface {
	isInformed(v uint64) bool
	// beginRound resets per-round tracking; r is retained until endRound
	// (the bit-set engine scans it to recover duplicate-caller indices).
	beginRound(r Round)
	// callerClaim registers call ci as placed by v. When v already placed
	// a call this round it reports that call's index instead.
	callerClaim(v uint64, ci int) (prev int, dup bool)
	// edgeUse registers one use of edge {u,v} and reports whether this
	// use is the first beyond capacity (true exactly once per edge).
	edgeUse(u, v uint64) bool
	// recvUse registers one call targeting v, same contract as edgeUse.
	recvUse(v uint64) bool
	// inform buffers v as newly informed; applied at endRound, matching
	// the model's end-of-round knowledge update.
	inform(v uint64)
	// endRound applies buffered informs, clears round state and returns
	// the informed count.
	endRound() uint64
	informedCount() uint64
	// seedInformed marks vs informed before any round runs — the range
	// validator's way of entering mid-schedule. Duplicates (and the
	// source) are fine; counting stays exact.
	seedInformed(vs []uint64)
}

// slotIndexedState is the optional roundState extension the CSR engine
// implements: the state exposes its slot numbering so the (sharded)
// fill phase can resolve each hop's edge slot once — EdgeSlot doubles
// as the edge-existence check, by the SlottedNetwork contract — and the
// serial merge phase consumes the resolved slots without re-searching
// the adjacency structure.
type slotIndexedState interface {
	roundState
	slottedNet() SlottedNetwork
	// edgeUseSlot is edgeUse for a pre-resolved slot id.
	edgeUseSlot(slot int) bool
}

// streamValidator drives the fill/merge cycle and owns the reusable
// buffers, so steady-state validation of a valid schedule allocates
// (amortised) nothing per call.
type streamValidator struct {
	net        Network
	k          int
	order      uint64
	opts       Options
	st         roundState
	res        *Result
	fillShards int // fill-phase goroutine budget; <= 0 means GOMAXPROCS

	stages     []uint8
	shardViols [][]Violation
	violBuf    []Violation

	// Slot-indexed fast path (slotIndexedState engines only): hopOff[i]
	// indexes call i of the current block into slots, where the fill
	// workers record each hop's resolved edge slot.
	slotInit bool
	slotSt   slotIndexedState
	sn       SlottedNetwork
	gg       *graph.Graph // devirtualised slot source when sn is a GraphNetwork
	hopOff   []int32
	slots    []int32
}

func (v *streamValidator) validateRound(ri int, round Round) {
	if !v.slotInit {
		v.slotInit = true
		if v.fillShards <= 0 {
			// Resolved once: GOMAXPROCS takes a runtime lock, and this
			// sits on the per-round path of many-round schedules.
			v.fillShards = runtime.GOMAXPROCS(0)
		}
		if ss, ok := v.st.(slotIndexedState); ok {
			v.slotSt, v.sn = ss, ss.slottedNet()
			if gn, ok := v.sn.(GraphNetwork); ok {
				v.gg = gn.G
			}
		}
	}
	v.st.beginRound(round)
	for base := 0; base < len(round); base += streamBlock {
		blk := round[base:min(base+streamBlock, len(round))]
		stages, viols := v.fillBlock(ri, base, blk)
		v.mergeBlock(ri, base, blk, stages, viols)
	}
	v.res.InformedPerRound = append(v.res.InformedPerRound, v.st.endRound())
}

// fillBlock runs the structural checks for one block of calls, sharded
// across goroutines. It returns the per-call stages and the structural
// violations sorted by call index (workers own contiguous ascending
// chunks, so concatenating their buffers in worker order is sorted).
func (v *streamValidator) fillBlock(ri, base int, blk Round) ([]uint8, []Violation) {
	if cap(v.stages) < len(blk) {
		v.stages = make([]uint8, len(blk))
	}
	stages := v.stages[:len(blk)]

	if v.sn != nil {
		// Prefix-sum the hop counts so fill workers write resolved slots
		// into disjoint regions of one flat buffer.
		if cap(v.hopOff) < len(blk)+1 {
			v.hopOff = make([]int32, len(blk)+1)
		}
		v.hopOff = v.hopOff[:len(blk)+1]
		total := int32(0)
		for i, c := range blk {
			v.hopOff[i] = total
			if h := len(c.Path) - 1; h > 0 {
				total += int32(h)
			}
		}
		v.hopOff[len(blk)] = total
		if cap(v.slots) < int(total) {
			v.slots = make([]int32, total)
		}
		v.slots = v.slots[:total]
	}

	workers := v.fillShards
	if w := (len(blk) + streamShardChunk - 1) / streamShardChunk; w < workers {
		workers = w
	}
	for len(v.shardViols) < max(workers, 1) {
		v.shardViols = append(v.shardViols, nil)
	}
	if workers <= 1 {
		v.shardViols[0] = v.checkCalls(ri, base, blk, 0, len(blk), stages, v.shardViols[0][:0])
		return stages, v.shardViols[0]
	}

	chunk := (len(blk) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(blk))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			v.shardViols[w] = v.checkCalls(ri, base, blk, lo, hi, stages, v.shardViols[w][:0])
		}(w, lo, hi)
	}
	wg.Wait()
	v.violBuf = v.violBuf[:0]
	for w := 0; w < workers; w++ {
		v.violBuf = append(v.violBuf, v.shardViols[w]...)
	}
	return stages, v.violBuf
}

// checkCalls is the fill-phase worker body for calls [lo, hi) of blk.
func (v *streamValidator) checkCalls(ri, base int, blk Round, lo, hi int, stages []uint8, out []Violation) []Violation {
	for i := lo; i < hi; i++ {
		var hopSlots []int32
		if v.sn != nil {
			hopSlots = v.slots[v.hopOff[i]:v.hopOff[i+1]]
		}
		stages[i], out = v.checkCall(ri, base+i, blk[i], hopSlots, out)
	}
	return out
}

// checkCall mirrors the sequential validator's per-call structural
// section, including its violation order and early-exit points. On
// slot-indexed engines hopSlots receives each hop's resolved edge slot
// (valid whenever the returned stage is stageFull).
func (v *streamValidator) checkCall(ri, ci int, call Call, hopSlots []int32, out []Violation) (uint8, []Violation) {
	if len(call.Path) < 2 {
		return stageSkip, append(out, Violation{ri, ci, PathInvalid,
			fmt.Sprintf("path has %d vertices", len(call.Path))})
	}
	bad := false
	for _, u := range call.Path {
		if u >= v.order {
			out = append(out, Violation{ri, ci, VertexOutOfRange,
				fmt.Sprintf("vertex %d outside [0,%d)", u, v.order)})
			bad = true
		}
	}
	if bad {
		return stageSkip, out
	}
	out, bad = appendRepeatViolations(out, ri, ci, call.Path)
	if v.sn != nil {
		// EdgeSlot is the edge-existence check on slotted networks; the
		// resolved slot is kept for the merge phase. Path vertices are
		// already known in range, so the devirtualised graph call is safe.
		for i := 1; i < len(call.Path); i++ {
			var s int
			var ok bool
			if v.gg != nil {
				s, ok = v.gg.EdgeSlot(int(call.Path[i-1]), int(call.Path[i]))
			} else {
				s, ok = v.sn.EdgeSlot(call.Path[i-1], call.Path[i])
			}
			if !ok {
				out = append(out, Violation{ri, ci, PathInvalid,
					fmt.Sprintf("no edge {%d,%d}", call.Path[i-1], call.Path[i])})
				bad = true
				continue
			}
			hopSlots[i-1] = int32(s)
		}
	} else {
		for i := 1; i < len(call.Path); i++ {
			if !v.net.HasEdge(call.Path[i-1], call.Path[i]) {
				out = append(out, Violation{ri, ci, PathInvalid,
					fmt.Sprintf("no edge {%d,%d}", call.Path[i-1], call.Path[i])})
				bad = true
			}
		}
	}
	if call.Length() > v.k {
		out = append(out, Violation{ri, ci, PathTooLong,
			fmt.Sprintf("length %d > k = %d", call.Length(), v.k)})
	}
	if !v.st.isInformed(call.Path[0]) {
		out = append(out, Violation{ri, ci, CallerUninformed,
			fmt.Sprintf("caller %d not informed", call.Path[0])})
	}
	if bad {
		return stageCaller, out
	}
	return stageFull, out
}

// appendRepeatViolations reports every path vertex equal to an earlier
// one. Paths are short (<= k+1 hops in real schedules), so a quadratic
// scan beats a hash map; pathological inputs fall back to a map.
func appendRepeatViolations(out []Violation, ri, ci int, path []uint64) ([]Violation, bool) {
	bad := false
	if len(path) <= 32 {
		for i, u := range path {
			for _, w := range path[:i] {
				if w == u {
					out = append(out, Violation{ri, ci, PathInvalid,
						fmt.Sprintf("vertex %d repeated on path", u)})
					bad = true
					break
				}
			}
		}
		return out, bad
	}
	seen := make(map[uint64]bool, len(path))
	for _, u := range path {
		if seen[u] {
			out = append(out, Violation{ri, ci, PathInvalid,
				fmt.Sprintf("vertex %d repeated on path", u)})
			bad = true
		}
		seen[u] = true
	}
	return out, bad
}

// mergeBlock interleaves the fill-phase violations with the cross-call
// disjointness checks, in call order, reproducing Validate's sequence.
func (v *streamValidator) mergeBlock(ri, base int, blk Round, stages []uint8, viols []Violation) {
	vi := 0
	for i, call := range blk {
		ci := base + i
		for vi < len(viols) && viols[vi].Call == ci {
			v.res.Violations = append(v.res.Violations, viols[vi])
			vi++
		}
		if stages[i] == stageSkip {
			continue
		}
		if l := call.Length(); l > v.res.MaxCallLength {
			v.res.MaxCallLength = l
		}
		if prev, dup := v.st.callerClaim(call.Path[0], ci); dup {
			v.res.Violations = append(v.res.Violations, Violation{ri, ci, CallerDuplicate,
				fmt.Sprintf("caller %d already placed call %d", call.Path[0], prev)})
		}
		if stages[i] != stageFull {
			continue
		}
		if v.slotSt != nil {
			hs := v.slots[v.hopOff[i]:v.hopOff[i+1]]
			for h := 1; h < len(call.Path); h++ {
				if v.slotSt.edgeUseSlot(int(hs[h-1])) {
					e := mkEdge(call.Path[h-1], call.Path[h])
					v.res.Violations = append(v.res.Violations, Violation{ri, ci, EdgeConflict,
						fmt.Sprintf("edge {%d,%d} used %d times, capacity %d",
							e.u, e.v, v.opts.EdgeCapacity+1, v.opts.EdgeCapacity)})
				}
			}
		} else {
			for h := 1; h < len(call.Path); h++ {
				if v.st.edgeUse(call.Path[h-1], call.Path[h]) {
					e := mkEdge(call.Path[h-1], call.Path[h])
					v.res.Violations = append(v.res.Violations, Violation{ri, ci, EdgeConflict,
						fmt.Sprintf("edge {%d,%d} used %d times, capacity %d",
							e.u, e.v, v.opts.EdgeCapacity+1, v.opts.EdgeCapacity)})
				}
			}
		}
		to := call.Path[len(call.Path)-1]
		if v.st.recvUse(to) {
			v.res.Violations = append(v.res.Violations, Violation{ri, ci, ReceiverConflict,
				fmt.Sprintf("receiver %d targeted %d times, capacity %d",
					to, v.opts.ReceiverCapacity+1, v.opts.ReceiverCapacity)})
		}
		if v.st.isInformed(to) && !v.opts.AllowInformedReceiver {
			v.res.Violations = append(v.res.Violations, Violation{ri, ci, ReceiverInformed,
				fmt.Sprintf("receiver %d already informed", to)})
		}
		v.st.inform(to)
	}
}

// mapState is the general-purpose round state: the same per-round hash
// maps the sequential validator uses, for networks that carry no edge
// numbering (or exceed the flat engines' size caps). It doubles as the
// reference engine the differential suite crosschecks csrState against.
// The maps are allocated once and cleared — not remade — between
// rounds, so a steady-state round costs no allocations.
type mapState struct {
	opts     Options
	informed map[uint64]bool
	edges    map[edgeKey]int
	recvs    map[uint64]int
	callers  map[uint64]int
	newly    []uint64
}

func newMapState(source uint64, opts Options) *mapState {
	return &mapState{
		opts:     opts,
		informed: map[uint64]bool{source: true},
		edges:    make(map[edgeKey]int),
		recvs:    make(map[uint64]int),
		callers:  make(map[uint64]int),
	}
}

func (m *mapState) isInformed(v uint64) bool { return m.informed[v] }

func (m *mapState) seedInformed(vs []uint64) {
	for _, v := range vs {
		m.informed[v] = true
	}
}

func (m *mapState) beginRound(r Round) {
	clear(m.edges)
	clear(m.recvs)
	clear(m.callers)
	m.newly = m.newly[:0]
}

func (m *mapState) callerClaim(v uint64, ci int) (int, bool) {
	if prev, dup := m.callers[v]; dup {
		return prev, true
	}
	m.callers[v] = ci
	return 0, false
}

func (m *mapState) edgeUse(u, v uint64) bool {
	e := mkEdge(u, v)
	m.edges[e]++
	return m.edges[e] == m.opts.EdgeCapacity+1
}

func (m *mapState) recvUse(v uint64) bool {
	m.recvs[v]++
	return m.recvs[v] == m.opts.ReceiverCapacity+1
}

func (m *mapState) inform(v uint64) { m.newly = append(m.newly, v) }

func (m *mapState) endRound() uint64 {
	for _, v := range m.newly {
		m.informed[v] = true
	}
	return uint64(len(m.informed))
}

func (m *mapState) informedCount() uint64 { return uint64(len(m.informed)) }

// bitvecState is the Definition 1 fast path for dimensioned networks:
// every disjointness constraint becomes a bit test in a flat set. Edge
// slots are indexed vertex*n + dim (dim the 0-based flipped bit at the
// lower endpoint), receivers and callers by vertex. The *Dup shadows
// reproduce the sequential validator's report-once-per-slot behaviour.
// Touched slots are recorded and cleared between rounds, so the sets are
// allocated once per validation run.
type bitvecState struct {
	n     int
	count uint64

	informed   *bitvec.Set // order bits
	edgeUsed   *bitvec.Set // order*n bits
	edgeDup    *bitvec.Set
	recvUsed   *bitvec.Set // order bits
	recvDup    *bitvec.Set
	callerUsed *bitvec.Set // order bits

	round          Round
	claimed        []int // call indices that registered a caller, in order
	touchedEdges   []int
	touchedRecvs   []int
	touchedCallers []int
	newly          []uint64
}

func newBitvecState(order uint64, n int, source uint64) *bitvecState {
	st := &bitvecState{
		n:          n,
		count:      1,
		informed:   bitvec.New(int(order)),
		edgeUsed:   bitvec.New(int(order) * n),
		edgeDup:    bitvec.New(int(order) * n),
		recvUsed:   bitvec.New(int(order)),
		recvDup:    bitvec.New(int(order)),
		callerUsed: bitvec.New(int(order)),
	}
	st.informed.Set(int(source))
	return st
}

func (b *bitvecState) isInformed(v uint64) bool { return b.informed.Get(int(v)) }

func (b *bitvecState) seedInformed(vs []uint64) {
	for _, v := range vs {
		if !b.informed.TestAndSet(int(v)) {
			b.count++
		}
	}
}

func (b *bitvecState) beginRound(r Round) { b.round = r }

func (b *bitvecState) callerClaim(v uint64, ci int) (int, bool) {
	if !b.callerUsed.TestAndSet(int(v)) {
		b.touchedCallers = append(b.touchedCallers, int(v))
		b.claimed = append(b.claimed, ci)
		return 0, false
	}
	// Duplicate: recover the first claiming call's index by scanning the
	// registered claims (rare — only on an actual violation).
	for _, idx := range b.claimed {
		if b.round[idx].Path[0] == v {
			return idx, true
		}
	}
	return 0, true // unreachable: a set caller bit implies a claim
}

func (b *bitvecState) edgeUse(u, v uint64) bool {
	if u > v {
		u, v = v, u
	}
	slot := int(u)*b.n + bits.TrailingZeros64(u^v)
	if !b.edgeUsed.TestAndSet(slot) {
		b.touchedEdges = append(b.touchedEdges, slot)
		return false
	}
	return !b.edgeDup.TestAndSet(slot)
}

func (b *bitvecState) recvUse(v uint64) bool {
	if !b.recvUsed.TestAndSet(int(v)) {
		b.touchedRecvs = append(b.touchedRecvs, int(v))
		return false
	}
	return !b.recvDup.TestAndSet(int(v))
}

func (b *bitvecState) inform(v uint64) { b.newly = append(b.newly, v) }

func (b *bitvecState) endRound() uint64 {
	for _, v := range b.newly {
		if !b.informed.TestAndSet(int(v)) {
			b.count++
		}
	}
	for _, s := range b.touchedEdges {
		b.edgeUsed.Clear(s)
		b.edgeDup.Clear(s)
	}
	for _, s := range b.touchedRecvs {
		b.recvUsed.Clear(s)
		b.recvDup.Clear(s)
	}
	for _, s := range b.touchedCallers {
		b.callerUsed.Clear(s)
	}
	b.newly = b.newly[:0]
	b.touchedEdges = b.touchedEdges[:0]
	b.touchedRecvs = b.touchedRecvs[:0]
	b.touchedCallers = b.touchedCallers[:0]
	b.claimed = b.claimed[:0]
	b.round = nil
	return b.count
}

func (b *bitvecState) informedCount() uint64 { return b.count }
