package linecomm

import (
	"iter"

	"sparsehypercube/internal/graph"
)

// TreeRounds yields a k = 1 broadcast schedule on an arbitrary graph,
// round by round: a BFS spanning tree is built from source, and in each
// round every informed vertex that still has uninformed tree children
// calls the next one. The schedule is valid under Definition 1 —
// receivers are distinct (each child is called exactly once), calls are
// edge-disjoint (tree edges are distinct), callers are informed, one
// call per caller per round — and informs every vertex reachable from
// source, so on a connected graph it is complete. It is the general-
// graph workload of the CSR engine's differential suite and of
// benchtab's map-vs-CSR curve.
//
// The yielded round and its call paths reuse storage between
// iterations; use CloneRound to retain one. An out-of-range source
// yields nothing.
func TreeRounds(g *graph.Graph, source uint64) iter.Seq[Round] {
	return func(yield func(Round) bool) {
		n := g.NumVertices()
		if source >= uint64(n) {
			return
		}
		// BFS from source; children of v are the vertices v first reached.
		parent := make([]int32, n)
		for i := range parent {
			parent[i] = -1
		}
		order := make([]int32, 0, n) // vertices in BFS discovery order
		parent[source] = int32(source)
		order = append(order, int32(source))
		for head := 0; head < len(order); head++ {
			v := order[head]
			for _, w := range g.Neighbors(int(v)) {
				if parent[w] < 0 {
					parent[w] = v
					order = append(order, w)
				}
			}
		}
		// children[off[v]:off[v+1]] in discovery order: earlier-found
		// children are informed first, keeping rounds frontier-shaped.
		deg := make([]int32, n+1)
		for _, v := range order[1:] {
			deg[parent[v]+1]++
		}
		off := make([]int32, n+1)
		for v := 1; v <= n; v++ {
			off[v] = off[v-1] + deg[v]
		}
		children := make([]int32, off[n])
		cursor := make([]int32, n)
		copy(cursor, off[:n])
		for _, v := range order[1:] {
			p := parent[v]
			children[cursor[p]] = v
			cursor[p]++
		}
		// Simulate: informed vertices in the order they were informed,
		// each with a cursor over its remaining children. One arena and
		// one Round buffer are reused across rounds.
		next := make([]int32, n)
		copy(next, off[:n])
		informed := make([]int32, 0, n)
		informed = append(informed, int32(source))
		var (
			round Round
			arena []uint64
		)
		for {
			calls := 0
			for _, v := range informed {
				if next[v] < off[v+1] {
					calls++
				}
			}
			if calls == 0 {
				return
			}
			if cap(round) < calls {
				round = make(Round, calls)
				arena = make([]uint64, 2*calls)
			}
			round = round[:calls]
			arena = arena[:2*calls]
			ci := 0
			nInformed := len(informed)
			for _, v := range informed[:nInformed] {
				if next[v] == off[v+1] {
					continue
				}
				w := children[next[v]]
				next[v]++
				arena[2*ci] = uint64(v)
				arena[2*ci+1] = uint64(w)
				round[ci] = Call{Path: arena[2*ci : 2*ci+2 : 2*ci+2]}
				informed = append(informed, w)
				ci++
			}
			if !yield(round) {
				return
			}
		}
	}
}
