package linecomm

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"sparsehypercube/internal/topo"
)

// dimNet upgrades a hypercube GraphNetwork to a DimensionedNetwork so
// tests can exercise the validator's bit-set engine (Q_n satisfies the
// one-bit-per-edge contract).
type dimNet struct {
	GraphNetwork
	n int
}

func (d dimNet) N() int { return d.n }

// plainNet strips a GraphNetwork down to the bare Network interface so
// the validator cannot see its slot numbering and falls back to the map
// engine. Tests use it to keep mapState covered now that a bare
// GraphNetwork routes to the CSR engine.
type plainNet struct {
	g GraphNetwork
}

func (p plainNet) Order() uint64            { return p.g.Order() }
func (p plainNet) HasEdge(u, v uint64) bool { return p.g.HasEdge(u, v) }

// engines returns the same Q_n network three times, one per
// disjointness engine: wrapped so only the map engine applies, bare so
// the CSR engine applies, and dimensioned for the bit-set engine.
func engines(n int) map[string]Network {
	g := GraphNetwork{G: topo.Hypercube(n)}
	return map[string]Network{"map": plainNet{g}, "csr": g, "bitvec": dimNet{g, n}}
}

// mustMatchSerial asserts that the streaming validator reproduces the
// serial validator's Result exactly — violations, order, messages,
// per-round informed counts, flags.
func mustMatchSerial(t *testing.T, net Network, k int, s *Schedule) {
	t.Helper()
	want := Validate(net, k, s)
	got := ValidateStream(net, k, s.Source, s.Stream())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("stream result diverges from serial:\nserial: %+v\nstream: %+v", want, got)
	}
}

func TestValidateStreamMatchesSerialOnValidSchedule(t *testing.T) {
	const n = 8
	base := binomialSchedule(n)
	for name, net := range engines(n) {
		t.Run(name, func(t *testing.T) {
			res := ValidateStream(net, 1, base.Source, base.Stream())
			if !res.Valid() || !res.MinimumTime || res.Informed != 1<<n {
				t.Fatalf("valid schedule rejected: %v", res.Err())
			}
			mustMatchSerial(t, net, 1, base)
		})
	}
}

func TestValidateStreamMatchesSerialOnMutations(t *testing.T) {
	const n = 6
	base := binomialSchedule(n)
	for name, net := range engines(n) {
		t.Run(name, func(t *testing.T) {
			for _, m := range mutationsForQn(n) {
				rng := rand.New(rand.NewSource(42))
				for trial := 0; trial < 20; trial++ {
					s := cloneSchedule(base)
					if !m.mut(rng, s) {
						continue
					}
					if res := ValidateStream(net, 1, s.Source, s.Stream()); res.Valid() && res.Complete && res.MinimumTime {
						t.Fatalf("mutation %q went undetected by stream validator", m.name)
					}
					mustMatchSerial(t, net, 1, s)
				}
			}
		})
	}
}

// TestValidateStreamMatchesSerialRandomCorruption goes beyond the curated
// mutation catalogue: random low-level path edits, call swaps and
// truncations, all crosschecked for exact Result equality on both engines.
func TestValidateStreamMatchesSerialRandomCorruption(t *testing.T) {
	const n = 5
	base := binomialSchedule(n)
	rng := rand.New(rand.NewSource(7))
	nets := engines(n)
	for trial := 0; trial < 300; trial++ {
		s := cloneSchedule(base)
		edits := rng.Intn(4) + 1
		for e := 0; e < edits; e++ {
			ri := rng.Intn(len(s.Rounds))
			if len(s.Rounds[ri]) == 0 {
				continue
			}
			ci := rng.Intn(len(s.Rounds[ri]))
			c := &s.Rounds[ri][ci]
			switch rng.Intn(5) {
			case 0: // corrupt one path vertex (possibly out of range)
				if len(c.Path) > 0 {
					c.Path[rng.Intn(len(c.Path))] = uint64(rng.Intn(1<<n + 4))
				}
			case 1: // extend the path
				c.Path = append(c.Path, uint64(rng.Intn(1<<n)))
			case 2: // truncate the path
				c.Path = c.Path[:rng.Intn(len(c.Path)+1)]
			case 3: // duplicate an existing call into this round
				s.Rounds[ri] = append(s.Rounds[ri], Call{Path: append([]uint64(nil), c.Path...)})
			case 4: // retarget the receiver at another call's receiver
				cj := rng.Intn(len(s.Rounds[ri]))
				if to, ok := last(s.Rounds[ri][cj].Path); ok && len(c.Path) > 0 {
					c.Path[len(c.Path)-1] = to
				}
			}
		}
		for name, net := range nets {
			t.Run("", func(t *testing.T) { _ = name; mustMatchSerial(t, net, 1, s) })
		}
	}
}

// TestValidateStreamMultiBlock shrinks streamBlock so rounds span many
// fill/merge cycles, then re-runs the mutation catalogue and checks the
// cross-block state (violation interleaving, duplicate-caller recovery,
// capacity tracking) still matches serial byte for byte on both engines.
func TestValidateStreamMultiBlock(t *testing.T) {
	prev := streamBlock
	streamBlock = 4
	defer func() { streamBlock = prev }()
	const n = 6 // final round: 32 calls = 8 blocks
	base := binomialSchedule(n)
	for name, net := range engines(n) {
		t.Run(name, func(t *testing.T) {
			mustMatchSerial(t, net, 1, base)
			for _, m := range mutationsForQn(n) {
				rng := rand.New(rand.NewSource(99))
				for trial := 0; trial < 10; trial++ {
					s := cloneSchedule(base)
					if !m.mut(rng, s) {
						continue
					}
					mustMatchSerial(t, net, 1, s)
				}
			}
			// Violations straddling block boundaries: duplicate callers
			// and shared receivers planted in distinct blocks of the
			// widest round.
			s := cloneSchedule(base)
			wide := s.Rounds[len(s.Rounds)-1]
			wide[9] = Call{Path: append([]uint64(nil), wide[1].Path...)} // dup caller+receiver, blocks 0 vs 2
			wide[17].Path[len(wide[17].Path)-1] = wide[3].To()           // shared receiver, blocks 0 vs 4
			wide[21] = Call{Path: append([]uint64(nil), wide[21].Path...)}
			wide[21].Path[0] = wide[5].Path[0] // dup caller, blocks 1 vs 5
			mustMatchSerial(t, net, 1, s)
		})
	}
}

func last(p []uint64) (uint64, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[len(p)-1], true
}

// TestValidateStreamInconsistentWidthFallsBack wraps Q_n with a lying
// address width (Order > 1<<N). The engine selection must reject the
// contract violation and fall back (to the CSR engine, since the
// underlying GraphNetwork still carries a valid slot numbering), so the
// Result still matches serial instead of aliasing edge slots.
func TestValidateStreamInconsistentWidthFallsBack(t *testing.T) {
	const n = 6
	g := GraphNetwork{G: topo.Hypercube(n)}
	liar := dimNet{g, n - 2}
	mustMatchSerial(t, liar, 1, binomialSchedule(n))
}

func TestValidateStreamSourceOutOfRange(t *testing.T) {
	const n = 4
	for _, net := range engines(n) {
		res := ValidateStream(net, 1, 1<<n, binomialSchedule(n).Stream())
		if res.Valid() || res.Violations[0].Kind != VertexOutOfRange {
			t.Fatalf("out-of-range source not reported: %+v", res)
		}
	}
}

func TestValidateStreamOptsGeneralisedCapacities(t *testing.T) {
	// Two calls over the same edge and onto the same receiver: illegal
	// under Definition 1, legal with capacity 2. The capacity-2 model
	// skips the bit-set engine (capacity-1 only) and lands on the CSR
	// engine's per-slot counters — or on the map engine for the wrapped
	// net; crosscheck every engine against serial ValidateOpts.
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{0, 1, 3}}, {Path: []uint64{1, 3}}},
	}}
	opts := Options{EdgeCapacity: 2, ReceiverCapacity: 2, AllowInformedReceiver: true}
	for name, net := range engines(3) {
		want := ValidateOpts(net, 2, s, opts)
		got := ValidateStreamOpts(net, 2, s.Source, s.Stream(), opts)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: capacity-2 stream diverges:\nserial: %+v\nstream: %+v", name, want, got)
		}
		if len(got.Violations) != 0 {
			t.Fatalf("%s: capacity-2 model should accept the dilated round: %v", name, got.Err())
		}
		// Same schedule under Definition 1 must flag both conflicts.
		res := ValidateStream(net, 2, s.Source, s.Stream())
		if res.Valid() {
			t.Fatalf("%s: Definition 1 should reject the dilated round", name)
		}
	}
}

// TestValidateStreamSharded forces the parallel fill phase (frontiers
// above streamShardChunk with GOMAXPROCS > 1) and checks serial equality;
// under -race this also exercises the worker pool for data races.
func TestValidateStreamSharded(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 12 // final rounds have 2048+ calls
	base := binomialSchedule(n)
	for name, net := range engines(n) {
		t.Run(name, func(t *testing.T) {
			mustMatchSerial(t, net, 1, base)
		})
	}
}

func TestValidateStreamEarlyRounds(t *testing.T) {
	// A truncated stream (fewer than log2 N rounds) must be incomplete
	// but violation-free.
	const n = 6
	base := binomialSchedule(n)
	base.Rounds = base.Rounds[:3]
	for _, net := range engines(n) {
		res := ValidateStream(net, 1, base.Source, base.Stream())
		if !res.Valid() || res.Complete || res.MinimumTime {
			t.Fatalf("truncated schedule misjudged: %+v", res)
		}
		if len(res.InformedPerRound) != 3 || res.Informed != 8 {
			t.Fatalf("informed accounting wrong: %+v", res)
		}
	}
}
