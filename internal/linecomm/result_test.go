package linecomm

import (
	"fmt"
	"strings"
	"testing"
)

// resultWithViolations builds a Result carrying n distinct violations.
func resultWithViolations(n int) *Result {
	r := &Result{}
	for i := 0; i < n; i++ {
		r.Violations = append(r.Violations, Violation{
			Round: i, Call: i, Kind: PathInvalid, Msg: fmt.Sprintf("synthetic %d", i),
		})
	}
	return r
}

// TestErrTruncation pins the Err() rendering contract: up to five
// violations are spelled out, anything beyond is folded into a "(x more)"
// suffix.
func TestErrTruncation(t *testing.T) {
	cases := []struct {
		violations int
		spelled    int
		more       string
	}{
		{4, 4, ""},
		{5, 5, ""},
		{7, 5, "(2 more)"},
	}
	for _, tc := range cases {
		err := resultWithViolations(tc.violations).Err()
		if err == nil {
			t.Fatalf("%d violations: Err() = nil", tc.violations)
		}
		msg := err.Error()
		if !strings.Contains(msg, fmt.Sprintf("%d violations:", tc.violations)) {
			t.Errorf("%d violations: missing count header in %q", tc.violations, msg)
		}
		if got := strings.Count(msg, "synthetic"); got != tc.spelled {
			t.Errorf("%d violations: %d spelled out, want %d: %q", tc.violations, got, tc.spelled, msg)
		}
		if tc.more == "" {
			if strings.Contains(msg, "more)") {
				t.Errorf("%d violations: unexpected truncation suffix in %q", tc.violations, msg)
			}
		} else if !strings.Contains(msg, tc.more) {
			t.Errorf("%d violations: missing %q in %q", tc.violations, tc.more, msg)
		}
	}
}

// TestCallAccessorsGuardEmptyPath pins the zero-value contract: the
// endpoint accessors must not panic on an empty path, and Endpoints
// distinguishes vertex 0 from a missing path.
func TestCallAccessorsGuardEmptyPath(t *testing.T) {
	var zero Call
	if zero.From() != 0 || zero.To() != 0 || zero.Length() != 0 {
		t.Fatalf("zero call accessors: From=%d To=%d Length=%d, want all 0",
			zero.From(), zero.To(), zero.Length())
	}
	if _, _, ok := zero.Endpoints(); ok {
		t.Fatal("Endpoints on zero call reported ok")
	}
	c := Call{Path: []uint64{3, 1, 5}}
	from, to, ok := c.Endpoints()
	if !ok || from != 3 || to != 5 || c.From() != 3 || c.To() != 5 || c.Length() != 2 {
		t.Fatalf("populated call accessors wrong: %d %d %v", from, to, ok)
	}
}

// TestValidateEmptyPathCall pins that a zero-value call in a round is an
// ordinary PathInvalid finding, on both validator engines, not a panic.
func TestValidateEmptyPathCall(t *testing.T) {
	for name, net := range engines(3) {
		t.Run(name, func(t *testing.T) {
			s := &Schedule{Source: 0, Rounds: []Round{{{Path: []uint64{0, 1}}, {}}}}
			mustMatchSerial(t, net, 1, s)
			res := Validate(net, 1, s)
			found := false
			for _, v := range res.Violations {
				if v.Kind == PathInvalid && v.Call == 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("empty-path call not reported as PathInvalid: %+v", res.Violations)
			}
		})
	}
}
