package linecomm

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/topo"
)

// Differential suite for the CSR engine: on arbitrary (non-hypercube)
// graphs the same schedule is validated three ways — the serial
// reference, the streaming map engine (via plainNet, which conceals the
// slot numbering), and the streaming CSR engine (bare GraphNetwork) —
// and every Result must agree exactly, down to the JSON bytes. The
// workloads are BFS-tree broadcasts (TreeRounds) on random graph
// families, intact and under a general-graph mutation catalogue
// mirroring mutationsForQn, plus unstructured random corruption,
// seeded-range validation and the gossip validators.

// treeSchedule materialises TreeRounds(g, source).
func treeSchedule(g *graph.Graph, source uint64) *Schedule {
	s := &Schedule{Source: source}
	for r := range TreeRounds(g, source) {
		s.Rounds = append(s.Rounds, CloneRound(r))
	}
	return s
}

// generalFamilies returns the general-graph zoo for one seed: sparse
// Erdős–Rényi (possibly disconnected), random regular, tree plus
// chords, and the star/path degenerate shapes.
func generalFamilies(seed int64) []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", topo.Gnp(40, 0.1, seed)},
		{"regular", topo.RandomRegular(32, 4, seed)},
		{"connected", topo.RandomConnected(48, 24, seed)},
		{"star", topo.Star(33)},
		{"path", topo.Path(32)},
	}
}

// mustAgreeGeneral validates s on g under all engines that apply to a
// general graph and requires exact agreement: serial vs map-stream vs
// CSR-stream DeepEqual, and map vs CSR byte-identical JSON.
func mustAgreeGeneral(t *testing.T, g *graph.Graph, k int, s *Schedule, opts Options) *Result {
	t.Helper()
	csrNet := GraphNetwork{G: g}
	mapNet := plainNet{csrNet}
	serial := ValidateOpts(csrNet, k, s, opts)
	mapRes := ValidateStreamOpts(mapNet, k, s.Source, s.Stream(), opts)
	csrRes := ValidateStreamOpts(csrNet, k, s.Source, s.Stream(), opts)
	if !reflect.DeepEqual(serial, mapRes) {
		t.Fatalf("map stream diverges from serial:\nserial: %+v\nmap:    %+v", serial, mapRes)
	}
	if !reflect.DeepEqual(mapRes, csrRes) {
		t.Fatalf("csr stream diverges from map stream:\nmap: %+v\ncsr: %+v", mapRes, csrRes)
	}
	mj, err := json.Marshal(mapRes)
	if err != nil {
		t.Fatal(err)
	}
	cj, err := json.Marshal(csrRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mj, cj) {
		t.Fatalf("map and csr reports differ as JSON:\nmap: %s\ncsr: %s", mj, cj)
	}
	return csrRes
}

// TestCSRDifferentialIntact: intact BFS-tree broadcasts across the
// family zoo, k in {1,2,3}, several seeds. On connected graphs the
// schedule must be accepted as complete by every engine.
func TestCSRDifferentialIntact(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		for _, fam := range generalFamilies(seed) {
			s := treeSchedule(fam.g, 0)
			for k := 1; k <= 3; k++ {
				res := mustAgreeGeneral(t, fam.g, k, s, DefaultOptions())
				if !res.Valid() {
					t.Fatalf("%s seed %d k=%d: tree schedule rejected: %v", fam.name, seed, k, res.Err())
				}
				if graph.IsConnected(fam.g) && !res.Complete {
					t.Fatalf("%s seed %d k=%d: tree schedule incomplete on connected graph", fam.name, seed, k)
				}
			}
		}
	}
}

// generalMutations is the mutation catalogue for a BFS-tree schedule on
// an arbitrary graph — the general-graph mirror of mutationsForQn. Each
// mutation breaks a model rule; mut returns false when the shape of the
// schedule or graph makes it inapplicable.
func generalMutations(g *graph.Graph) []scheduleMutation {
	order := uint64(g.NumVertices())
	neighbor := func(v uint64) (uint64, bool) {
		ns := g.Neighbors(int(v))
		if len(ns) == 0 {
			return 0, false
		}
		return uint64(ns[0]), true
	}
	nonNeighbor := func(v uint64) (uint64, bool) {
		for w := uint64(0); w < order; w++ {
			if w != v && !g.HasEdge(int(v), int(w)) {
				return w, true
			}
		}
		return 0, false
	}
	return []scheduleMutation{
		{"retarget-receiver-to-duplicate", func(rng *rand.Rand, s *Schedule) bool {
			for _, r := range s.Rounds {
				if len(r) >= 2 {
					r[1].Path[len(r[1].Path)-1] = r[0].To()
					return true
				}
			}
			return false
		}},
		{"uninformed-caller", func(rng *rand.Rand, s *Schedule) bool {
			// The receiver of the very last call is informed only at the
			// end; making it a caller in round 0 is illegal whenever the
			// schedule has more than one round.
			if len(s.Rounds) < 2 {
				return false
			}
			lastRound := s.Rounds[len(s.Rounds)-1]
			v := lastRound[len(lastRound)-1].To()
			w, ok := neighbor(v)
			if !ok {
				return false
			}
			s.Rounds[0] = append(s.Rounds[0], Call{Path: []uint64{v, w}})
			return true
		}},
		{"duplicate-caller", func(rng *rand.Rand, s *Schedule) bool {
			u := s.Rounds[0][0].From()
			w, ok := neighbor(u)
			if !ok {
				return false
			}
			s.Rounds[0] = append(s.Rounds[0], Call{Path: []uint64{u, w}})
			return true
		}},
		{"non-edge-hop", func(rng *rand.Rand, s *Schedule) bool {
			c := &s.Rounds[0][0]
			w, ok := nonNeighbor(c.From())
			if !ok {
				return false
			}
			c.Path[len(c.Path)-1] = w
			return true
		}},
		{"repeated-vertex", func(rng *rand.Rand, s *Schedule) bool {
			c := &s.Rounds[0][0]
			n := len(c.Path)
			c.Path = append(c.Path, c.Path[n-2], c.Path[n-1])
			return true
		}},
		{"overlong-call", func(rng *rand.Rand, s *Schedule) bool {
			// Extend a call's path by a neighbor walk well past any k the
			// tests use; revisits along the walk only add violations.
			c := &s.Rounds[0][0]
			prev, cur := c.From(), c.To()
			for hop := 0; hop < 4; hop++ {
				next := uint64(0)
				found := false
				for _, w := range g.Neighbors(int(cur)) {
					if uint64(w) != prev {
						next, found = uint64(w), true
						break
					}
				}
				if !found {
					next, found = prev, prev != cur
				}
				if !found {
					return false
				}
				c.Path = append(c.Path, next)
				prev, cur = cur, next
			}
			return true
		}},
		{"shared-edge", func(rng *rand.Rand, s *Schedule) bool {
			for _, r := range s.Rounds {
				if len(r) >= 2 {
					// Route call 1 over call 0's edge (the prefix hop may
					// itself be a non-edge — also a violation).
					r[1].Path = []uint64{r[1].From(), r[0].From(), r[0].To()}
					return true
				}
			}
			return false
		}},
		{"out-of-range-vertex", func(rng *rand.Rand, s *Schedule) bool {
			c := &s.Rounds[0][0]
			c.Path[len(c.Path)-1] = order
			return true
		}},
		{"empty-path", func(rng *rand.Rand, s *Schedule) bool {
			c := &s.Rounds[0][0]
			c.Path = c.Path[:1]
			return true
		}},
		{"re-inform", func(rng *rand.Rand, s *Schedule) bool {
			// The receiver of round 0's first call is informed from round 1
			// on; calling back to the (always informed) source re-informs.
			if len(s.Rounds) < 2 {
				return false
			}
			child := s.Rounds[0][0].To()
			src := s.Rounds[0][0].From()
			last := len(s.Rounds) - 1
			s.Rounds[last] = append(s.Rounds[last], Call{Path: []uint64{child, src}})
			return true
		}},
	}
}

// TestCSRDifferentialMutations runs the general mutation catalogue over
// the zoo: every applicable mutation must be rejected, with all engines
// in exact agreement on the Report.
func TestCSRDifferentialMutations(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		for _, fam := range generalFamilies(seed) {
			base := treeSchedule(fam.g, 0)
			if len(base.Rounds) == 0 {
				t.Fatalf("%s seed %d: empty tree schedule", fam.name, seed)
			}
			rng := rand.New(rand.NewSource(seed))
			applied := 0
			for _, m := range generalMutations(fam.g) {
				s := cloneSchedule(base)
				if !m.mut(rng, s) {
					continue
				}
				applied++
				res := mustAgreeGeneral(t, fam.g, 1, s, DefaultOptions())
				if res.Valid() {
					t.Fatalf("%s seed %d: mutation %q went undetected", fam.name, seed, m.name)
				}
			}
			if applied < 7 {
				t.Fatalf("%s seed %d: only %d mutations applicable", fam.name, seed, applied)
			}
		}
	}
}

// TestCSRDifferentialRandomCorruption goes beyond the curated catalogue
// with unstructured edits, under Definition 1 and under generalised
// capacities.
func TestCSRDifferentialRandomCorruption(t *testing.T) {
	g := topo.RandomConnected(40, 30, 11)
	base := treeSchedule(g, 0)
	order := uint64(g.NumVertices())
	rng := rand.New(rand.NewSource(13))
	optsList := []Options{
		DefaultOptions(),
		{EdgeCapacity: 2, ReceiverCapacity: 2, AllowInformedReceiver: true},
	}
	for trial := 0; trial < 200; trial++ {
		s := cloneSchedule(base)
		for e := rng.Intn(4) + 1; e > 0; e-- {
			ri := rng.Intn(len(s.Rounds))
			if len(s.Rounds[ri]) == 0 {
				continue
			}
			ci := rng.Intn(len(s.Rounds[ri]))
			c := &s.Rounds[ri][ci]
			switch rng.Intn(5) {
			case 0:
				c.Path[rng.Intn(len(c.Path))] = uint64(rng.Intn(int(order) + 3))
			case 1:
				c.Path = append(c.Path, uint64(rng.Intn(int(order))))
			case 2:
				c.Path = c.Path[:rng.Intn(len(c.Path)+1)]
			case 3:
				s.Rounds[ri] = append(s.Rounds[ri], Call{Path: append([]uint64(nil), c.Path...)})
			case 4:
				cj := rng.Intn(len(s.Rounds[ri]))
				if to, ok := last(s.Rounds[ri][cj].Path); ok {
					c.Path[len(c.Path)-1] = to
				}
			}
		}
		k := rng.Intn(3) + 1
		mustAgreeGeneral(t, g, k, s, optsList[trial%len(optsList)])
	}
}

// TestCSRSeededRangeGeneral: the seeded-range pipeline
// (CollectInformedStream + ValidateStreamSeeded + MergeRangeResults)
// must reproduce the serial stream Result on general networks under
// both the map and CSR engines — intact and mutated.
func TestCSRSeededRangeGeneral(t *testing.T) {
	g := topo.RandomConnected(48, 24, 5)
	base := treeSchedule(g, 0)
	schedules := []*Schedule{base}
	rng := rand.New(rand.NewSource(5))
	for _, m := range generalMutations(g) {
		s := cloneSchedule(base)
		if m.mut(rng, s) {
			schedules = append(schedules, s)
		}
	}
	csrNet := GraphNetwork{G: g}
	for _, net := range []struct {
		name string
		net  Network
	}{
		{"map-engine", plainNet{csrNet}},
		{"csr-engine", csrNet},
	} {
		t.Run(net.name, func(t *testing.T) {
			for si, s := range schedules {
				serial := ValidateStream(net.net, 1, s.Source, s.Stream())
				for _, workers := range []int{2, 3} {
					got := validateInRanges(net.net, 1, s.Source, s, workers)
					if !reflect.DeepEqual(serial, got) {
						t.Fatalf("schedule %d, %d workers: range result diverges:\nserial: %+v\nranged: %+v",
							si, workers, serial, got)
					}
				}
			}
		})
	}
}

// TestCSRGossipDifferential: the gossip and multi-source validators must
// agree between the map and CSR engines on general graphs, intact and
// corrupted.
func TestCSRGossipDifferential(t *testing.T) {
	g := topo.RandomConnected(40, 30, 3)
	base := treeSchedule(g, 0)
	rng := rand.New(rand.NewSource(3))
	schedules := []*Schedule{base}
	for _, m := range generalMutations(g) {
		s := cloneSchedule(base)
		if m.mut(rng, s) {
			schedules = append(schedules, s)
		}
	}
	csrNet := GraphNetwork{G: g}
	mapNet := plainNet{csrNet}
	sources := []uint64{0, uint64(g.NumVertices() / 2)}
	for si, s := range schedules {
		gm := ValidateGossipStream(mapNet, 2, s.Stream())
		gc := ValidateGossipStream(csrNet, 2, s.Stream())
		if !reflect.DeepEqual(gm, gc) {
			t.Fatalf("schedule %d: gossip diverges:\nmap: %+v\ncsr: %+v", si, gm, gc)
		}
		mm := ValidateMultiSourceStream(mapNet, 1, sources, s.Stream())
		mc := ValidateMultiSourceStream(csrNet, 1, sources, s.Stream())
		if !reflect.DeepEqual(mm, mc) {
			t.Fatalf("schedule %d: multi-source diverges:\nmap: %+v\ncsr: %+v", si, mm, mc)
		}
	}
}

// TestTreeRoundsSchedule pins the workload generator itself: on a
// connected graph the BFS-tree broadcast is valid, minimum-length in
// informed count (complete), and every round is yielded with reused
// storage (exercised implicitly by the streaming validation above); on
// a disconnected graph it informs exactly the source component; an
// out-of-range source yields nothing.
func TestTreeRoundsSchedule(t *testing.T) {
	g := topo.RandomConnected(64, 16, 9)
	res := ValidateStream(GraphNetwork{G: g}, 1, 0, TreeRounds(g, 0))
	if !res.Valid() || !res.Complete {
		t.Fatalf("tree broadcast invalid on connected graph: %v", res.Err())
	}

	// Two disjoint components: 0..15 path, 16..31 path.
	b := graph.NewBuilder(32)
	for v := 0; v < 15; v++ {
		b.AddEdge(v, v+1)
	}
	for v := 16; v < 31; v++ {
		b.AddEdge(v, v+1)
	}
	dg := b.Finish()
	res = ValidateStream(GraphNetwork{G: dg}, 1, 0, TreeRounds(dg, 0))
	if !res.Valid() || res.Complete || res.Informed != 16 {
		t.Fatalf("component broadcast: valid=%v complete=%v informed=%d", res.Valid(), res.Complete, res.Informed)
	}

	count := 0
	for range TreeRounds(dg, 99) {
		count++
	}
	if count != 0 {
		t.Fatalf("out-of-range source yielded %d rounds", count)
	}
}

// TestCSRStateAllocations pins the per-round allocation behaviour of the
// general-graph engines: validating a doubled schedule must allocate no
// more than validating it once (plus slack), i.e. rounds are processed
// with cleared-and-reused state, not per-round allocation. The doubled
// half re-informs every receiver, which AllowInformedReceiver makes
// violation-free, so neither engine grows its informed set or records
// violations there. fillShards is 1 to keep the fill phase on the
// calling goroutine.
func TestCSRStateAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow")
	}
	g := topo.RandomConnected(512, 256, 1)
	base := treeSchedule(g, 0)
	doubled := &Schedule{Source: 0, Rounds: append(append([]Round{}, base.Rounds...), base.Rounds...)}
	opts := Options{EdgeCapacity: 1, ReceiverCapacity: 1, AllowInformedReceiver: true}
	csrNet := GraphNetwork{G: g}
	for _, net := range []struct {
		name string
		net  Network
	}{
		{"csr-engine", csrNet},
		{"map-engine", plainNet{csrNet}},
	} {
		t.Run(net.name, func(t *testing.T) {
			run := func(s *Schedule) {
				// Seeded entry point: Complete is a merge-time judgement,
				// so check the informed count directly.
				res := ValidateStreamSeeded(net.net, 1, 0, nil, 0, s.Stream(), opts, 1)
				if !res.Valid() || res.Informed != uint64(g.NumVertices()) {
					t.Fatalf("schedule rejected: %v (informed %d)", res.Err(), res.Informed)
				}
			}
			allocs := testing.AllocsPerRun(5, func() { run(base) })
			allocsDoubled := testing.AllocsPerRun(5, func() { run(doubled) })
			if allocsDoubled > allocs+16 {
				t.Fatalf("allocations scale with rounds: %v for %d rounds vs %v for %d",
					allocsDoubled, len(doubled.Rounds), allocs, len(base.Rounds))
			}
		})
	}
}
