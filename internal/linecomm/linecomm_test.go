package linecomm

import (
	"strings"
	"testing"

	"sparsehypercube/internal/topo"
)

// starNet is K_{1,3} with center 0: the paper's fewest-edge member of G_2.
func starNet() Network { return GraphNetwork{topo.Star(4)} }

// starSchedule is a valid minimum-time 2-line broadcast from the center:
// round 1: 0->1; round 2: 0->2 and 1->(via 0)->3.
func starSchedule() *Schedule {
	return &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{0, 2}}, {Path: []uint64{1, 0, 3}}},
	}}
}

func TestValidStarBroadcast(t *testing.T) {
	res := Validate(starNet(), 2, starSchedule())
	if !res.Valid() {
		t.Fatalf("expected valid, got %v", res.Err())
	}
	if !res.Complete || !res.MinimumTime {
		t.Fatalf("expected complete minimum-time: %+v", res)
	}
	if res.MaxCallLength != 2 {
		t.Errorf("max call length = %d, want 2", res.MaxCallLength)
	}
	if len(res.InformedPerRound) != 2 || res.InformedPerRound[0] != 2 || res.InformedPerRound[1] != 4 {
		t.Errorf("informed per round = %v", res.InformedPerRound)
	}
	if res.Err() != nil {
		t.Errorf("Err() should be nil")
	}
}

func TestCallAccessors(t *testing.T) {
	c := Call{Path: []uint64{3, 1, 0, 2}}
	if c.From() != 3 || c.To() != 2 || c.Length() != 3 {
		t.Error("Call accessors wrong")
	}
	s := starSchedule()
	if s.TotalCalls() != 3 || s.MaxCallLength() != 2 {
		t.Error("Schedule accessors wrong")
	}
}

func wantKinds(t *testing.T, res *Result, kinds ...ViolationKind) {
	t.Helper()
	found := map[ViolationKind]bool{}
	for _, v := range res.Violations {
		found[v.Kind] = true
	}
	for _, k := range kinds {
		if !found[k] {
			t.Errorf("expected violation %v, got %v", k, res.Violations)
		}
	}
}

func TestCallerUninformed(t *testing.T) {
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{1, 2}}}, // 1 is not informed yet
	}}
	wantKinds(t, Validate(starNet(), 2, s), CallerUninformed)
}

func TestCallerDuplicate(t *testing.T) {
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}, {Path: []uint64{0, 2}}},
	}}
	wantKinds(t, Validate(starNet(), 2, s), CallerDuplicate)
}

func TestPathTooLong(t *testing.T) {
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{1, 0, 2}}},
	}}
	// Valid under k = 2 but too long under k = 1.
	if !Validate(starNet(), 2, s).Valid() {
		t.Fatal("schedule should be valid at k=2")
	}
	wantKinds(t, Validate(starNet(), 1, s), PathTooLong)
}

func TestPathInvalid(t *testing.T) {
	// Non-edge hop.
	s := &Schedule{Source: 0, Rounds: []Round{{{Path: []uint64{0, 1}}}, {{Path: []uint64{1, 2}}}}}
	wantKinds(t, Validate(starNet(), 2, s), PathInvalid)
	// Repeated vertex.
	s2 := &Schedule{Source: 0, Rounds: []Round{{{Path: []uint64{0, 1, 0}}}}}
	wantKinds(t, Validate(starNet(), 2, s2), PathInvalid)
	// Single-vertex path.
	s3 := &Schedule{Source: 0, Rounds: []Round{{{Path: []uint64{0}}}}}
	wantKinds(t, Validate(starNet(), 2, s3), PathInvalid)
}

func TestEdgeConflict(t *testing.T) {
	// On C_4 (0-1-2-3-0): the long call 0->3->2->1 and the short call 2->3
	// share edge {2,3} while having distinct receivers.
	c4 := GraphNetwork{topo.Cycle(4)}
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1, 2}}},
		{{Path: []uint64{0, 3, 2, 1}}, {Path: []uint64{2, 3}}},
	}}
	res := Validate(c4, 3, s)
	wantKinds(t, res, EdgeConflict)
}

func TestReceiverConflictAndInformed(t *testing.T) {
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{0, 2}}, {Path: []uint64{1, 0, 2}}},
	}}
	// 1->0->2 reuses edge {0,2} too; look only for receiver conflict here.
	wantKinds(t, Validate(starNet(), 2, s), ReceiverConflict)

	s2 := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{0, 1}}},
	}}
	wantKinds(t, Validate(starNet(), 2, s2), ReceiverInformed)
}

func TestVertexOutOfRange(t *testing.T) {
	s := &Schedule{Source: 0, Rounds: []Round{{{Path: []uint64{0, 9}}}}}
	wantKinds(t, Validate(starNet(), 2, s), VertexOutOfRange)
	s2 := &Schedule{Source: 9}
	wantKinds(t, Validate(starNet(), 2, s2), VertexOutOfRange)
}

func TestIncompleteSchedule(t *testing.T) {
	s := &Schedule{Source: 0, Rounds: []Round{{{Path: []uint64{0, 1}}}}}
	res := Validate(starNet(), 2, s)
	if !res.Valid() {
		t.Fatalf("unexpected violations: %v", res.Err())
	}
	if res.Complete || res.MinimumTime {
		t.Error("schedule informs only 2 of 4 vertices")
	}
	if res.Informed != 2 {
		t.Errorf("informed = %d", res.Informed)
	}
}

func TestMinimumRounds(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 4: 2, 5: 3, 22: 5, 1 << 15: 15}
	for order, want := range cases {
		if got := MinimumRounds(order); got != want {
			t.Errorf("MinimumRounds(%d) = %d, want %d", order, got, want)
		}
	}
}

func TestEdgeLoadsAndCongestion(t *testing.T) {
	// Star broadcast uses edge {0,1} twice across rounds in this variant:
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{0, 2}}, {Path: []uint64{1, 0, 3}}},
	}}
	loads := EdgeLoads(s)
	if len(loads) != 3 {
		t.Fatalf("edges used = %d, want 3", len(loads))
	}
	byEdge := map[[2]uint64]int{}
	for _, l := range loads {
		byEdge[[2]uint64{l.U, l.V}] = l.Load
	}
	if byEdge[[2]uint64{0, 1}] != 2 {
		t.Errorf("edge {0,1} load = %d, want 2", byEdge[[2]uint64{0, 1}])
	}
	// Sorted by decreasing load: the busiest edge comes first.
	if loads[0].Load != 2 {
		t.Errorf("loads not sorted: %v", loads)
	}
	st := Congestion(s)
	if st.MaxEdgeLoad != 2 || st.EdgesUsed != 3 || st.TotalEdgeTime != 4 {
		t.Errorf("congestion stats = %+v", st)
	}
	if st.MeanEdgeLoad <= 1 || st.MeanEdgeLoad >= 2 {
		t.Errorf("mean edge load = %f", st.MeanEdgeLoad)
	}
	h := PathLengthHistogram(s)
	if h[1] != 2 || h[2] != 1 {
		t.Errorf("length histogram = %v", h)
	}
}

func TestFormat(t *testing.T) {
	out := starSchedule().Format(2)
	for _, want := range []string{"broadcast from 00 in 2 rounds", "round 1 (1 calls):", "01 -> 00 -> 11 (length 2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

func TestViolationStrings(t *testing.T) {
	kinds := []ViolationKind{CallerUninformed, CallerDuplicate, PathInvalid, PathTooLong,
		EdgeConflict, ReceiverConflict, ReceiverInformed, VertexOutOfRange, ViolationKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Error("empty violation string")
		}
	}
	v := Violation{Round: 0, Call: 1, Kind: EdgeConflict, Msg: "x"}
	if !strings.Contains(v.String(), "edge-conflict") {
		t.Error("violation String missing kind")
	}
}
