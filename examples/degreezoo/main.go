// Degreezoo places the sparse hypercube in the landscape of topologies the
// paper cites (§1, §3): hypercube variants trade degree against diameter;
// the sparse hypercube trades degree against call length while keeping
// broadcast time minimal.
package main

import (
	"fmt"
	"log"

	"sparsehypercube/internal/analysis"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

func main() {
	fmt.Println(analysis.RunZoo().Markdown())

	// The tri-tree end of the scale (Theorem 1): degree 3 suffices once
	// calls may be long.
	h := 6
	g := topo.TriTree(h)
	k := core.Theorem1K(uint64(g.NumVertices()))
	fmt.Printf("Theorem 1 endpoint: T_%d with N = %d, Delta = 3, k = %d\n",
		h, g.NumVertices(), k)

	// Degree progression for fixed N = 2^12 as k grows.
	n := 12
	fmt.Printf("\ndegree needed for minimum-time broadcast on N = 2^%d as k grows:\n", n)
	fmt.Printf("  %-6s %-22s %-14s\n", "k", "construction", "max degree")
	for kk := 1; kk <= 5; kk++ {
		s, err := core.NewAuto(kk, n)
		if err != nil {
			log.Fatal(err)
		}
		// Sanity: the scheme must still verify.
		res := linecomm.Validate(s, kk, s.BroadcastSchedule(0))
		if !res.MinimumTime {
			log.Fatalf("k=%d: scheme broken", kk)
		}
		fmt.Printf("  %-6d %-22s %-14d\n", kk, s.Params(), s.MaxDegree())
	}
	fmt.Println("\n(k = 1 is the full hypercube; each extra hop of call length buys")
	fmt.Println(" roughly a k-th root in degree, down to Theorem 1's constant 3.)")
}
