// Figures regenerates the paper's illustrations as text and Graphviz DOT:
// Fig. 2 (Rule-1 edges), Fig. 3 (G_{4,2}), Fig. 4 (the broadcast from
// 0000), and Fig. 5 (the window partition of the k = 3 construction).
// Pipe the DOT block into `dot -Tpng` to draw Fig. 3.
package main

import (
	"fmt"
	"log"
	"os"

	"sparsehypercube/internal/analysis"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/labeling"
	"sparsehypercube/internal/topo"
)

func main() {
	fmt.Println(analysis.RunFig2().Markdown())
	fmt.Println(analysis.RunFig3().Markdown())

	tb, formatted := analysis.RunFig4()
	fmt.Println(tb.Markdown())
	fmt.Println(formatted)

	fmt.Println("### EXP-FIG5 — window partition (Fig. 5)")
	fmt.Println(analysis.RunFig5())

	// Fig. 3 as DOT, with the paper's labeling/partition choices.
	s, err := core.NewBase(4, 2, core.LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3}, {4}},
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("### G_{4,2} in DOT (Fig. 3)")
	if err := graph.WriteDOT(os.Stdout, g, "G42", func(v int) string {
		return topo.BitString(uint64(v), 4)
	}); err != nil {
		log.Fatal(err)
	}
}
