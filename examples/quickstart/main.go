// Quickstart: build a sparse hypercube, inspect the degree savings, run
// a broadcast, and verify it against the k-line model — using only the
// public API.
package main

import (
	"fmt"
	"log"

	"sparsehypercube"
)

func main() {
	const (
		k = 2  // calls may traverse at most 2 edges
		n = 15 // 2^15 = 32768 vertices
	)
	cube, err := sparsehypercube.New(k, n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sparse hypercube for k = %d, N = 2^%d:\n", cube.K(), cube.N())
	fmt.Printf("  parameter vector: %v\n", cube.Dims())
	fmt.Printf("  max degree:       %d (the full hypercube Q_%d has %d)\n", cube.MaxDegree(), n, n)
	fmt.Printf("  edges:            %d (Q_%d has %d)\n", cube.NumEdges(), n, uint64(n)<<uint(n-1))
	lb := sparsehypercube.LowerBoundDegree(k, n)
	ub, _ := sparsehypercube.UpperBoundDegree(k, n)
	fmt.Printf("  paper bounds:     %d <= Delta <= %d\n\n", lb, ub)

	source := uint64(0b101010101010101)
	plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: source})
	sched := plan.Materialize() // snapshot; plan.Rounds() would stream
	report := plan.Verify()
	fmt.Printf("broadcast from vertex %d (%d rounds materialised):\n",
		source, len(sched.Rounds))
	fmt.Printf("  rounds:          %d (minimum possible: %d)\n",
		report.Rounds, sparsehypercube.MinimumRounds(cube.Order()))
	fmt.Printf("  max call length: %d (bound k = %d)\n", report.MaxCallLength, k)
	fmt.Printf("  valid:           %v\n", report.Valid)
	fmt.Printf("  minimum time:    %v\n", report.MinimumTime)

	if !report.MinimumTime {
		log.Fatal("unexpected: schedule not minimum time")
	}
	fmt.Println("\nevery vertex of the 32768-vertex network was informed in 15 rounds")
	fmt.Println("over a graph with maximum degree", cube.MaxDegree(), "instead of", n)
}
