// Broadcastsim contrasts the three communication regimes the paper spans
// on low-degree networks:
//
//  1. store-and-forward (k = 1) on the sparse hypercube — slow, because
//     the graph was thinned below the degree a 1-line broadcast needs;
//  2. the paper's k-line broadcast on the same graph — minimum time, the
//     headline result;
//  3. store-and-forward on the full hypercube — minimum time but with
//     n-degree routers.
//
// It also prints the congestion profile of the k-line schedule (the
// future-work discussion of the paper's §5).
package main

import (
	"fmt"
	"log"

	"sparsehypercube/internal/broadcast"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

func main() {
	const n, m = 12, 4
	s, err := core.NewBase(n, m)
	if err != nil {
		log.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s — N = %d, Delta = %d (Q_%d would need Delta = %d)\n\n",
		s.Params(), s.Order(), s.MaxDegree(), n, n)

	// Regime 1: store-and-forward on the sparse graph.
	sf, err := broadcast.StoreForwardSchedule(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	res1 := linecomm.Validate(linecomm.GraphNetwork{G: g}, 1, sf)
	fmt.Printf("k=1 store-and-forward on sparse graph: %d rounds (minimum %d) — valid: %v\n",
		len(sf.Rounds), n, res1.Valid())

	// Regime 2: the paper's 2-line broadcast on the same graph.
	sched := s.BroadcastSchedule(0)
	res2 := linecomm.Validate(s, 2, sched)
	fmt.Printf("k=2 line broadcast on sparse graph:    %d rounds — valid: %v, minimum time: %v\n",
		len(sched.Rounds), res2.Valid(), res2.MinimumTime)

	// Regime 3: store-and-forward on the full hypercube.
	q := topo.Hypercube(n)
	sfq, err := broadcast.StoreForwardSchedule(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	res3 := linecomm.Validate(linecomm.GraphNetwork{G: q}, 1, sfq)
	fmt.Printf("k=1 store-and-forward on full Q_%d:    %d rounds — valid: %v (but Delta = %d)\n\n",
		n, len(sfq.Rounds), res3.Valid(), n)

	// Congestion profile of the k-line schedule.
	st := linecomm.Congestion(sched)
	hist := linecomm.PathLengthHistogram(sched)
	fmt.Println("congestion of the k=2 schedule (paper §5 discussion):")
	fmt.Printf("  total calls:        %d\n", sched.TotalCalls())
	fmt.Printf("  call lengths:       1-hop x %d, 2-hop x %d\n", hist[1], hist[2])
	fmt.Printf("  distinct edges hit: %d of %d\n", st.EdgesUsed, s.NumEdges())
	fmt.Printf("  busiest edge load:  %d uses across %d rounds\n", st.MaxEdgeLoad, len(sched.Rounds))
	fmt.Printf("  mean edge load:     %.2f\n", st.MeanEdgeLoad)

	fmt.Println("\ntop 5 busiest edges:")
	for i, l := range linecomm.EdgeLoads(sched) {
		if i == 5 {
			break
		}
		fmt.Printf("  {%s, %s}: %d\n", topo.BitString(l.U, n), topo.BitString(l.V, n), l.Load)
	}
}
