// Gossip demonstrates the paper's §5 research direction implemented as a
// working scheme: all-to-all token exchange under the k-line model on a
// low-degree sparse hypercube, via gather-scatter in 2n rounds — a factor
// 2 from the lower bound, using only the public API.
package main

import (
	"fmt"
	"log"

	"sparsehypercube"
)

func main() {
	const (
		k = 2
		n = 10 // 1024 vertices
	)
	cube, err := sparsehypercube.New(k, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gossip on a degree-%d sparse hypercube with %d vertices (k = %d):\n\n",
		cube.MaxDegree(), cube.Order(), cube.K())

	sched := cube.Gossip(0)
	rep, err := cube.VerifyGossip(sched)
	if err != nil {
		log.Fatal(err)
	}

	lower := sparsehypercube.GossipMinimumRounds(cube.Order())
	fmt.Printf("  rounds:       %d (gather %d + scatter %d)\n", rep.Rounds, n, n)
	fmt.Printf("  lower bound:  %d (token spread doubles at best)\n", lower)
	fmt.Printf("  valid:        %v\n", rep.Valid)
	fmt.Printf("  complete:     %v — every vertex knows all %d tokens\n", rep.Complete, cube.Order())
	fmt.Printf("  overhead:     %.1fx the lower bound\n\n", float64(rep.Rounds)/float64(lower))

	fmt.Println("the paper's open problem: can gossip finish in the minimum", lower)
	fmt.Println("rounds on a graph of degree o(log N)? Broadcast can (this library's")
	fmt.Println("core result); for gossip the gather-scatter factor 2 is the best here.")
}
