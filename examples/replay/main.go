// Replay: the write-once/verify-many workflow. A broadcast plan for a
// 2^18-vertex cube is streamed to disk in the compact binary round
// format (never materialised), then replayed twice — once through the
// full validator, once just counting calls — off the same file. The
// expensive part (schedule generation) runs exactly once; every replay
// costs only decode + validate.
//
// The same flow from the command line:
//
//	sparsecube plan   -k 2 -n 18 -source 0 -o plan.shcp
//	sparsecube replay -in plan.shcp
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"sparsehypercube"
)

func main() {
	const (
		k = 2
		n = 18 // 262144 vertices
	)
	cube, err := sparsehypercube.New(k, n)
	if err != nil {
		log.Fatal(err)
	}
	plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0})

	// Write once: rounds stream straight off the generator into the
	// encoder; peak memory is the widest round, not the schedule.
	path := filepath.Join(os.TempDir(), "sparsehypercube-plan.shcp")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	bytes, err := plan.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	calls := cube.Order() - 1
	fmt.Printf("wrote %d calls (%d rounds) to %s\n", calls, cube.N(), path)
	fmt.Printf("  %d bytes (%.2f bytes/call) in %v\n",
		bytes, float64(bytes)/float64(calls), time.Since(start).Round(time.Millisecond))

	// Verify many: each replay decodes the file lazily. Verification
	// re-binds to the stored scheme and cube parameters — the reader
	// needs nothing but the file.
	start = time.Now()
	report := mustReplay(path).Verify()
	fmt.Printf("replay 1: valid=%v minimumTime=%v rounds=%d in %v\n",
		report.Valid, report.MinimumTime, report.Rounds,
		time.Since(start).Round(time.Millisecond))
	if !report.Valid || !report.MinimumTime {
		log.Fatalf("replay failed verification: %+v", report)
	}

	// A replayed plan is also just a round source: serve it, transmit
	// it, count it — without paying for validation.
	start = time.Now()
	replay := mustReplay(path)
	served := 0
	for round := range replay.Rounds() {
		served += len(round)
	}
	if err := replay.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay 2: served %d calls in %v\n",
		served, time.Since(start).Round(time.Millisecond))

	if err := os.Remove(path); err != nil {
		log.Fatal(err)
	}
}

func mustReplay(path string) *sparsehypercube.Plan {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	// The decoder reads incrementally; letting the process exit closes
	// the file. A long-lived server would defer f.Close per replay.
	plan, err := sparsehypercube.ReadPlan(f)
	if err != nil {
		log.Fatal(err)
	}
	return plan
}
